#include "testing/chaos.h"

#include <algorithm>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <utility>

#include "catalog/compiler.h"
#include "catalog/index_file.h"
#include "cluster/cluster.h"
#include "common/string_util.h"
#include "mediator/mediator.h"
#include "mediator/retry.h"
#include "obs/trace.h"
#include "service/canonical.h"
#include "tsl/canonical.h"

namespace tslrw {

namespace {

/// Mutable drill state shared between the drill loop and every per-request
/// wrapper: the currently active fault schedules (swapped between phases
/// while the server keeps serving) and the saturation gate.
class ChaosState {
 public:
  void SetSchedules(std::map<std::string, FaultSchedule> schedules) {
    std::lock_guard<std::mutex> lock(mu_);
    schedules_ = std::move(schedules);
  }

  std::map<std::string, FaultSchedule> SchedulesSnapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return schedules_;
  }

  void CloseGate() {
    std::lock_guard<std::mutex> lock(mu_);
    gate_closed_ = true;
    arrivals_ = 0;
  }

  void OpenGate() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      gate_closed_ = false;
    }
    gate_cv_.notify_all();
  }

  /// Called by workers from inside a fetch. Blocks (wall time only — the
  /// virtual clock never moves, so deadlines are unaffected) while the
  /// gate is closed; a no-op otherwise.
  void WaitAtGate() {
    std::unique_lock<std::mutex> lock(mu_);
    if (!gate_closed_) return;
    ++arrivals_;
    arrival_cv_.notify_all();
    gate_cv_.wait(lock, [this] { return !gate_closed_; });
  }

  /// Blocks the drill thread until \p n workers are parked at the gate —
  /// the point where the pool is provably saturated and queueing begins.
  void AwaitArrivals(size_t n) {
    std::unique_lock<std::mutex> lock(mu_);
    arrival_cv_.wait(lock, [this, n] { return arrivals_ >= n; });
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, FaultSchedule> schedules_;
  bool gate_closed_ = false;
  size_t arrivals_ = 0;
  std::condition_variable gate_cv_;
  std::condition_variable arrival_cv_;
};

/// Per-request wrapper: a CatalogWrapper behind a FaultInjector whose
/// schedules are the drill's *current* phase faults, plus the saturation
/// gate in front of every fetch.
class ChaosWrapper : public Wrapper {
 public:
  ChaosWrapper(std::shared_ptr<ChaosState> state, uint64_t seed,
               VirtualClock* clock)
      : state_(std::move(state)), injector_(&base_, seed, clock) {
    for (auto& [key, schedule] : state_->SchedulesSnapshot()) {
      injector_.SetSchedule(key, std::move(schedule));
    }
  }

  Result<WrapperResult> Fetch(const Capability& capability,
                              const SourceCatalog& catalog) override {
    state_->WaitAtGate();
    return injector_.Fetch(capability, catalog);
  }

 private:
  std::shared_ptr<ChaosState> state_;
  CatalogWrapper base_;
  FaultInjector injector_;
};

std::set<std::string> RootKeys(const OemDatabase& db) {
  std::set<std::string> keys;
  for (const Oid& root : db.roots()) keys.insert(root.ToString());
  return keys;
}

std::string_view ShortState(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

/// One phase's outcome tallies, accumulated from deterministic per-answer
/// data only (never wall time or scheduling order).
struct PhaseTally {
  size_t complete = 0;
  size_t partial = 0;
  size_t degraded = 0;
  size_t failed = 0;
  size_t rejected = 0;
  size_t hedges = 0;
  size_t hedge_wins = 0;
  size_t short_circuits = 0;
  size_t deadline_degraded = 0;
};

std::string TallyLine(const PhaseTally& tally, size_t requests) {
  return StrCat(requests, " request(s): ", tally.complete, " complete, ",
                tally.partial, " partial, ", tally.degraded, " degraded, ",
                tally.failed, " failed, ", tally.rejected,
                " rejected; hedges ", tally.hedges, " issued/",
                tally.hedge_wins, " won, short-circuits ",
                tally.short_circuits,
                ", deadline-degraded ", tally.deadline_degraded);
}

std::string BreakerLine(const std::vector<BreakerSnapshot>& breakers) {
  std::string line = "  breakers:";
  for (const BreakerSnapshot& breaker : breakers) {
    line += StrCat(" ", breaker.endpoint, "=", ShortState(breaker.state));
  }
  return line + "\n";
}

/// One breaker line for a single-shard drill (the historical format), one
/// per shard otherwise — each shard's registry is its own failure domain.
std::string BreakerLines(const ShardRouter& router) {
  if (router.shards() == 1) {
    return BreakerLine(router.resilience(0).Snapshot());
  }
  std::string lines;
  for (size_t s = 0; s < router.shards(); ++s) {
    std::string line = StrCat("  breakers[s", s, "]:");
    for (const BreakerSnapshot& breaker : router.resilience(s).Snapshot()) {
      line += StrCat(" ", breaker.endpoint, "=", ShortState(breaker.state));
    }
    lines += line + "\n";
  }
  return lines;
}

}  // namespace

std::vector<ChaosPhase> StandardChaosScript(
    const std::vector<SourceDescription>& sources,
    const ChaosOptions& options) {
  // Fault targets: prefer views with an α-equivalent replica on the same
  // source (failover and hedging then have somewhere to go); magnitudes
  // come off the drill seed so different seeds exercise different storms.
  std::vector<std::string> views;
  std::map<std::pair<std::string, std::string>, std::vector<std::string>>
      groups;
  for (const SourceDescription& source : sources) {
    for (const Capability& cap : source.capabilities) {
      views.push_back(cap.view.name);
      groups[{source.source, CanonicalizeQuery(cap.view).key}].push_back(
          cap.view.name);
    }
  }
  std::vector<std::string> replicated;
  for (const auto& [key, members] : groups) {
    if (members.size() > 1) {
      replicated.insert(replicated.end(), members.begin(), members.end());
    }
  }
  const std::vector<std::string>& pool =
      replicated.empty() ? views : replicated;

  // The source owning the replicated pool: storms and outages keyed by it
  // hit every endpoint at once, whichever one plans happen to prefer.
  std::string pool_source;
  for (const SourceDescription& source : sources) {
    for (const Capability& cap : source.capabilities) {
      if (cap.view.name == pool.front()) pool_source = source.source;
    }
  }

  DeterministicRng rng(options.seed * 0x9E3779B97F4A7C15ULL + 1);
  const std::string flap_target = pool[rng.NextUint64() % pool.size()];
  const std::string storm_target = pool[rng.NextUint64() % pool.size()];
  const uint64_t storm_ticks = 6 + rng.NextUint64() % 26;
  const std::string flaky_target = views[rng.NextUint64() % views.size()];
  const double flaky_p = 0.35 + 0.4 * rng.NextUnit();

  FaultSchedule dead;
  dead.steady_state = Fault::Unavailable();
  FaultSchedule storm;
  storm.steady_state = Fault::SlowBy(storm_ticks);
  // One endpoint 3x slower than its source's baseline storm: view-keyed
  // schedules take precedence, so whichever endpoint plans prefer, the
  // latency spread guarantees hedges fire (and win when the slow endpoint
  // is the preferred one).
  FaultSchedule storm_hot;
  storm_hot.steady_state = Fault::SlowBy(storm_ticks * 3);
  FaultSchedule flaky;
  flaky.steady_state = Fault::Flaky(flaky_p);

  std::vector<ChaosPhase> script;
  script.push_back({"baseline", {}, ChaosPhase::Action::kNone});
  script.push_back(
      {"endpoint-flap", {{flap_target, dead}}, ChaosPhase::Action::kNone});
  std::map<std::string, FaultSchedule> storm_faults;
  if (!pool_source.empty()) storm_faults[pool_source] = storm;
  storm_faults[storm_target] = storm_hot;
  script.push_back(
      {"latency-storm", std::move(storm_faults), ChaosPhase::Action::kNone});
  script.push_back(
      {"flaky-network", {{flaky_target, flaky}}, ChaosPhase::Action::kNone});
  if (!pool_source.empty()) {
    // Every endpoint of the replicated source dead: failover has nowhere
    // to go, answers degrade per §7, and both breakers must open — then
    // re-close during recovery.
    script.push_back(
        {"source-outage", {{pool_source, dead}}, ChaosPhase::Action::kNone});
  }
  script.push_back(
      {"index-corruption", {}, ChaosPhase::Action::kIndexCorruption});
  script.push_back(
      {"snapshot-swap-race", {}, ChaosPhase::Action::kCatalogSwapRace});
  if (options.cluster_shards > 1) {
    // A network partition severs a shard from the router *and* a source
    // from the survivors: partitioned keys re-route to the ring successor
    // while answers degrade per §7, then the rejoin restores the baseline.
    // Saturation is skipped — its worker/queue arithmetic assumes one pool.
    std::map<std::string, FaultSchedule> partition_faults;
    if (!pool_source.empty()) partition_faults[pool_source] = dead;
    script.push_back({"shard-partition", std::move(partition_faults),
                      ChaosPhase::Action::kShardPartition});
  } else {
    script.push_back(
        {"pool-saturation", {}, ChaosPhase::Action::kPoolSaturation});
  }
  return script;
}

Result<ChaosDrillResult> RunChaosDrill(
    const std::vector<SourceDescription>& sources,
    const SourceCatalog& catalog, const std::vector<TslQuery>& queries,
    const std::vector<ChaosPhase>& script, const ChaosOptions& options) {
  if (queries.empty()) {
    return Status::InvalidArgument("chaos drill needs at least one query");
  }

  // Fault-free baselines: the soundness yardstick for every drilled
  // answer. Computed through a plain mediator (no faults, no server).
  Result<Mediator> made = Mediator::Make(sources);
  if (!made.ok()) return made.status();
  std::vector<std::string> baseline_text;
  std::vector<std::set<std::string>> baseline_roots;
  for (const TslQuery& query : queries) {
    Result<DegradedAnswer> answer = made->Answer(query, catalog);
    if (!answer.ok()) return answer.status();
    if (!answer->complete()) {
      return Status::InvalidArgument(
          StrCat("chaos drill fixture: query '", query.name,
                 "' is not answerable fault-free"));
    }
    baseline_text.push_back(answer->result.ToString());
    baseline_roots.push_back(RootKeys(answer->result));
  }

  // The drilled server: resilience on (a drill without breakers has
  // nothing to recover), every request on the drill's deadline budget,
  // fetches routed through the phase-switchable chaos wrapper.
  ServerOptions server_options = options.server;
  server_options.request_deadline_ticks = options.request_deadline_ticks;
  if (!server_options.resilience.breaker.enabled) {
    server_options.resilience.breaker.enabled = true;
    server_options.resilience.hedge.enabled = true;
  }
  auto state = std::make_shared<ChaosState>();
  ClusterOptions cluster_options;
  cluster_options.shards = std::max<size_t>(options.cluster_shards, 1);
  cluster_options.server = server_options;
  ShardRouter server(
      std::move(made).ValueOrDie(), catalog, cluster_options,
      [state](VirtualClock* clock, uint64_t seed) -> std::unique_ptr<Wrapper> {
        return std::make_unique<ChaosWrapper>(state, seed, clock);
      });
  const size_t shards = server.shards();
  // Aggregate plan-cache residency across the shards (each shard caches
  // the keys it owns; the drill's retention checks are about the union).
  auto cache_entries = [&server]() {
    return server.stats().TotalPlanCache().entries;
  };

  ChaosDrillResult result;
  std::string& report = result.report;
  report = StrCat("chaos drill: seed=", options.seed, ", ", queries.size(),
                  " quer", queries.size() == 1 ? "y" : "ies", ", ",
                  script.size(), " phase(s), deadline ",
                  options.request_deadline_ticks, " tick(s)",
                  shards > 1 ? StrCat(", ", shards, " shard(s)") : "", "\n");
  DeterministicRng rng(options.seed);

  auto violation = [&result](std::string what) {
    result.violations.push_back(std::move(what));
  };

  // Absorbs one answered request into the tallies and checks soundness:
  // roots ⊆ baseline always, byte-identity when the answer claims
  // completeness.
  auto absorb = [&](const std::string& phase_name, size_t request_index,
                    size_t query_index,
                    const Result<ServeResponse>& response, PhaseTally* tally) {
    if (!response.ok()) {
      ++tally->failed;
      return;
    }
    const DegradedAnswer& answer = response->answer;
    switch (answer.completeness) {
      case Completeness::kComplete:
        ++tally->complete;
        break;
      case Completeness::kPartial:
        ++tally->partial;
        break;
      case Completeness::kDegraded:
        ++tally->degraded;
        break;
    }
    tally->hedges += answer.report.hedges_issued;
    tally->hedge_wins += answer.report.hedge_wins;
    tally->short_circuits += answer.report.breaker_short_circuits;
    if (answer.report.deadline_degraded) ++tally->deadline_degraded;

    const std::set<std::string> roots = RootKeys(answer.result);
    if (!std::includes(baseline_roots[query_index].begin(),
                       baseline_roots[query_index].end(), roots.begin(),
                       roots.end())) {
      result.sound = false;
      violation(StrCat("phase ", phase_name, " request ", request_index,
                       " (", queries[query_index].name,
                       "): answer roots are not a subset of the fault-free "
                       "baseline"));
    }
    if (answer.completeness == Completeness::kComplete &&
        answer.result.ToString() != baseline_text[query_index]) {
      result.sound = false;
      violation(StrCat("phase ", phase_name, " request ", request_index,
                       " (", queries[query_index].name,
                       "): complete answer is not byte-identical to the "
                       "fault-free baseline"));
    }
  };

  for (const ChaosPhase& phase : script) {
    state->SetSchedules(phase.faults);
    PhaseTally tally;
    std::string action_note;

    if (phase.action == ChaosPhase::Action::kIndexCorruption) {
      // Corrupt the serialized catalog-index image in memory and prove the
      // loader refuses it — a corrupt index must become a clean kDataLoss,
      // never a silently wrong planner. Then attach the pristine index to
      // the live server (the plan cache survives: indexed searches are
      // byte-identical).
      Result<std::shared_ptr<const CompiledCatalog>> compiled =
          CompileCatalog(sources, nullptr);
      if (!compiled.ok()) return compiled.status();
      std::string image = SerializeCatalog(**compiled);
      image[image.size() / 2] =
          static_cast<char>(image[image.size() / 2] ^ 0x40);
      Result<std::shared_ptr<const CompiledCatalog>> loaded =
          DeserializeCatalog(image);
      if (loaded.ok() || !loaded.status().IsDataLoss()) {
        result.sound = false;
        violation(StrCat("phase ", phase.name,
                         ": corrupted index image was not rejected with "
                         "data loss (got ",
                         loaded.ok() ? "OK" : loaded.status().ToString(),
                         ")"));
      }
      Status attached = server.AttachCatalogIndex(*compiled);
      if (!attached.ok()) {
        result.sound = false;
        violation(StrCat("phase ", phase.name,
                         ": pristine index rejected: ",
                         attached.ToString()));
      }
      action_note =
          "  [index] corrupt image rejected (data loss); pristine index "
          "attached to the live server\n";
    }

    if (phase.action == ChaosPhase::Action::kPoolSaturation) {
      // Park every worker inside a fetch, fill the bounded queue, and
      // prove the overflow rejects deterministically while the retry-after
      // hint reports the backlog; then open the gate and drain. Scripts
      // only schedule this for single-shard drills, where the one pool's
      // worker/queue arithmetic below is exact.
      const ServerStats before = server.stats().shard[0];
      const size_t workers = before.threads;
      const size_t capacity = before.queue_capacity;
      state->CloseGate();
      std::vector<std::future<Result<ServeResponse>>> futures;
      std::vector<size_t> future_queries;
      auto submit = [&](size_t i) -> bool {
        ServeOptions serve;
        serve.seed = rng.NextUint64();
        const size_t query_index = i % queries.size();
        auto submitted = server.Submit(queries[query_index], serve);
        if (!submitted.ok()) {
          if (!submitted.status().IsResourceExhausted()) {
            violation(StrCat("phase ", phase.name,
                             ": overload rejection was not "
                             "kResourceExhausted: ",
                             submitted.status().ToString()));
            result.sound = false;
          }
          ++tally.rejected;
          return false;
        }
        futures.push_back(std::move(submitted).ValueOrDie());
        future_queries.push_back(query_index);
        return true;
      };
      for (size_t i = 0; i < workers; ++i) submit(i);
      state->AwaitArrivals(workers);
      for (size_t i = 0; i < capacity; ++i) submit(workers + i);
      size_t overflow_rejected = 0;
      for (size_t i = 0; i < options.saturation_overflow; ++i) {
        if (!submit(workers + capacity + i)) ++overflow_rejected;
      }
      const size_t hint = server.stats().shard[0].retry_after_queued;
      state->OpenGate();
      for (size_t i = 0; i < futures.size(); ++i) {
        absorb(phase.name, i, future_queries[i], futures[i].get(), &tally);
      }
      if (overflow_rejected != options.saturation_overflow) {
        result.sound = false;
        violation(StrCat("phase ", phase.name, ": expected ",
                         options.saturation_overflow,
                         " overflow rejection(s), got ", overflow_rejected));
      }
      action_note = StrCat("  [pool] ", workers, " worker(s) parked, ",
                           capacity, " queued, ", overflow_rejected,
                           " overflow rejection(s), retry-after hint ~", hint,
                           " queued\n");
      report += StrCat("phase ", phase.name, ": ",
                       TallyLine(tally, futures.size() + tally.rejected),
                       "\n", action_note, BreakerLines(server));
      continue;
    }

    // Sequential phases: requests round-robin the queries; the first one
    // is traced and its span tree appended to the drill's trace dump.
    const size_t plan_entries_before = cache_entries();
    size_t partition_victim = shards;
    uint64_t rerouted_before = 0;
    if (phase.action == ChaosPhase::Action::kShardPartition && shards > 1) {
      // Partition the shard owning the first drill query, so at least one
      // drilled key provably re-routes to its ring successor.
      partition_victim =
          server.HomeOf(MakePlanCacheKey(queries[0]).fingerprint);
      rerouted_before = server.stats().rerouted;
      server.SetShardDown(partition_victim, true);
    }
    for (size_t i = 0; i < options.requests_per_phase; ++i) {
      if (phase.action == ChaosPhase::Action::kShardPartition &&
          partition_victim < shards &&
          i == std::max<size_t>(options.requests_per_phase / 2, 1)) {
        // Rejoin: the shard comes back with its snapshot, plan cache, and
        // breakers intact, and the partition's source faults clear.
        server.SetShardDown(partition_victim, false);
        state->SetSchedules({});
        const uint64_t rerouted =
            server.stats().rerouted - rerouted_before;
        action_note = StrCat("  [partition] shard ", partition_victim,
                             " partitioned for ", i,
                             " request(s) (", rerouted,
                             " re-routed to its ring successor), then "
                             "rejoined; faults cleared\n");
        if (rerouted == 0) {
          result.sound = false;
          violation(StrCat("phase ", phase.name,
                           ": no request re-routed around the partitioned "
                           "shard"));
        }
      }
      if (phase.action == ChaosPhase::Action::kCatalogSwapRace &&
          i == options.requests_per_phase / 2) {
        server.ReplaceCatalog(catalog);  // answer-equivalent snapshot
        const size_t entries_after = cache_entries();
        if (entries_after < plan_entries_before) {
          result.sound = false;
          violation(StrCat("phase ", phase.name,
                           ": plan cache shrank across an answer-equivalent "
                           "catalog swap (", plan_entries_before, " -> ",
                           entries_after, ")"));
        }
        action_note = StrCat("  [swap] answer-equivalent catalog published "
                             "mid-phase; plan cache retained (",
                             entries_after, " entr",
                             entries_after == 1 ? "y" : "ies", ")\n");
      }
      const size_t query_index = i % queries.size();
      ServeOptions serve;
      serve.seed = rng.NextUint64();
      Tracer tracer(nullptr);
      if (i == 0) serve.tracer = &tracer;
      Result<ServeResponse> response =
          server.Answer(queries[query_index], serve);
      absorb(phase.name, i, query_index, response, &tally);
      if (i == 0) {
        result.traces += StrCat("=== phase ", phase.name, " request 0 (",
                                queries[query_index].name, ")\n",
                                tracer.ToText());
      }
    }
    if (phase.action == ChaosPhase::Action::kShardPartition &&
        !phase.faults.empty() && options.requests_per_phase >= 2 &&
        tally.partial + tally.degraded == 0) {
      result.sound = false;
      violation(StrCat("phase ", phase.name,
                       ": the partition severed a source but no answer "
                       "degraded per §7"));
    }
    report += StrCat("phase ", phase.name, ": ",
                     TallyLine(tally, options.requests_per_phase), "\n",
                     action_note, BreakerLines(server));
  }

  // Recovery: faults cleared, keep serving until every breaker re-closes.
  // Serving traffic re-probes the endpoints plans prefer; replica
  // endpoints outside every preferred plan get no organic traffic, so the
  // drill also runs explicit health probes against them — exactly what a
  // deployment's health checker does for shadow replicas.
  state->SetSchedules({});
  std::map<std::string, const Capability*> endpoint_caps;
  for (const SourceDescription& source : sources) {
    for (const Capability& cap : source.capabilities) {
      endpoint_caps[cap.view.name] = &cap;
    }
  }
  CatalogWrapper probe_wrapper;
  size_t rounds = 0;
  size_t probes = 0;
  while (!server.AllBreakersClosed() &&
         rounds < options.max_recovery_rounds) {
    ++rounds;
    for (const TslQuery& query : queries) {
      ServeOptions serve;
      serve.seed = rng.NextUint64();
      (void)server.Answer(query, serve);
    }
    // Each shard's registry is probed independently: organic traffic only
    // reaches a key's owning shard, so the other shards' breakers depend
    // on these probes — as shadow replicas depend on a health checker.
    for (size_t s = 0; s < shards; ++s) {
      ResilienceRegistry& registry = server.resilience(s);
      for (const BreakerSnapshot& breaker : registry.Snapshot()) {
        if (breaker.state == BreakerState::kClosed) continue;
        auto cap = endpoint_caps.find(breaker.endpoint);
        if (cap == endpoint_caps.end()) continue;
        if (!registry.Admit(breaker.endpoint).allowed) continue;
        ++probes;
        Result<WrapperResult> fetched =
            probe_wrapper.Fetch(*cap->second, catalog);
        if (fetched.ok()) {
          registry.RecordSuccess(breaker.endpoint, /*latency_ticks=*/0);
        } else {
          registry.RecordFailure(breaker.endpoint);
        }
      }
    }
  }
  const bool all_closed = server.AllBreakersClosed();
  if (!all_closed) {
    result.recovered = false;
    violation(StrCat("recovery: breakers still open after ", rounds,
                     " fault-free round(s)"));
  }
  bool answers_match = true;
  for (size_t i = 0; i < queries.size(); ++i) {
    ServeOptions serve;
    serve.seed = rng.NextUint64();
    Result<ServeResponse> response = server.Answer(queries[i], serve);
    if (!response.ok() || !response->answer.complete() ||
        response->answer.result.ToString() != baseline_text[i]) {
      answers_match = false;
      result.recovered = false;
      violation(StrCat("recovery: query '", queries[i].name,
                       "' did not return the fault-free baseline answer"));
    }
  }
  const size_t final_entries = cache_entries();
  const bool cache_retained = final_entries >= queries.size();
  if (!cache_retained) {
    result.recovered = false;
    violation(StrCat("recovery: plan cache lost entries (", final_entries,
                     " < ", queries.size(), ")"));
  }
  report += StrCat(
      "recovery: ", rounds, " fault-free round(s), ", probes,
      " health probe(s); breakers ",
      all_closed ? "all closed" : "NOT all closed", "; answers ",
      answers_match ? "byte-identical to fault-free baseline" : "DIVERGED",
      "; plan cache ", cache_retained ? "retained" : "LOST", " (",
      final_entries, " entr", final_entries == 1 ? "y" : "ies", ")\n");
  report += "final breakers:\n";
  for (size_t s = 0; s < shards; ++s) {
    for (const BreakerSnapshot& breaker : server.resilience(s).Snapshot()) {
      report += StrCat("  ", shards > 1 ? StrCat("s", s, " ") : "",
                       breaker.ToString(), "\n");
    }
  }
  report += StrCat("verdict: ", result.sound ? "SOUND" : "UNSOUND", ", ",
                   result.recovered ? "RECOVERED" : "NOT-RECOVERED", "\n");
  return result;
}

}  // namespace tslrw
