#include "testing/maint_differential.h"

#include <algorithm>
#include <cstring>
#include <future>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "common/string_util.h"
#include "constraints/dtd.h"
#include "constraints/inference.h"
#include "mediator/retry.h"
#include "obs/trace.h"
#include "oem/generator.h"
#include "testing/random_rules.h"
#include "tsl/parser.h"

namespace tslrw {

namespace {

TslQuery MustParseView(const std::string& text, const std::string& name) {
  auto parsed = ParseTslQuery(text, name);
  if (!parsed.ok()) {
    fprintf(stderr, "maint drill produced an unparsable rule: %s\n  %s\n",
            text.c_str(), parsed.status().ToString().c_str());
    abort();
  }
  return std::move(parsed).ValueOrDie();
}

/// One drilled view's mutable identity: which rule shape it has, which
/// body label(s) it matches, and which variable alphabet it is spelled in
/// (bumping `alpha` is an α-renaming — semantics unchanged, so the diff
/// must classify the swap as a no-op).
struct ViewState {
  size_t kind = 0;  ///< 0 = constant-label, 1 = deep, 2 = wildcard-label
  int body_label = 0;
  int alpha = 0;
};

Capability MakeDrillView(size_t id, const ViewState& state) {
  auto var = [&state](const char* base) {
    return state.alpha == 0 ? StrCat(base, "'")
                            : StrCat(base, "a", state.alpha, "'");
  };
  const std::string p = var("P");
  const std::string x = var("X");
  const std::string u = var("U");
  std::string text;
  if (state.kind == 1) {
    const std::string w = var("W");
    text = StrCat("<v", id, "(", p, ") o", id, " {<w", id, "(", x,
                  ") mid {<u", id, "(", w, ") leaf ", u, ">}>}> :- <", p,
                  " rec {<", x, " l", state.body_label, " {<", w, " l",
                  (state.body_label + 1) % 4, " ", u, ">}>}>@db");
  } else if (state.kind == 2) {
    const std::string label_var = var("LL");
    text = StrCat("<v", id, "(", p, ") o", id, " {<w", id, "(", x, ") m ",
                  u, ">}> :- <", p, " rec {<", x, " ", label_var, " ", u,
                  ">}>@db");
  } else {
    text = StrCat("<v", id, "(", p, ") o", id, " {<w", id, "(", x, ") m ",
                  u, ">}> :- <", p, " rec {<", x, " l", state.body_label,
                  " ", u, ">}>@db");
  }
  Capability cap;
  cap.view = MustParseView(text, StrCat("V", id));
  return cap;
}

/// One scripted step: the full post-mutation catalog (capability list +
/// whether the DTD is attached) and the request burst that follows it.
struct DrillStep {
  std::string description;
  std::vector<Capability> capabilities;
  bool with_constraints = false;
  /// (query index, request seed), in submission order.
  std::vector<std::pair<size_t, uint64_t>> requests;
};

/// Everything one arm observes for one request, rendered to bytes. The
/// two arms' vectors must match element-wise.
std::string RenderObservation(const TslQuery& query, uint64_t seed,
                              const Result<ServeResponse>& response,
                              const std::string& normalized_trace) {
  std::string out = StrCat("query=", query.name, " seed=", seed, "\n");
  if (!response.ok()) {
    return StrCat(out, "status: ", response.status().ToString(), "\n");
  }
  const ServeResponse& r = *response;
  out += StrCat("completeness: ",
                CompletenessToString(r.answer.completeness), "\n");
  out += r.answer.result.ToString();
  out += r.answer.report.ToString();
  if (r.plans != nullptr) {
    out += StrCat("plans: ", r.plans->size(),
                  r.plans->truncated ? " (truncated)" : "", "\n");
    for (const MediatorPlan& plan : r.plans->plans) {
      out += StrCat("  ", plan.ToString(), "\n");
    }
  }
  out += normalized_trace;
  return out;
}

/// The per-arm replay state and its observation log.
struct ArmResult {
  std::vector<std::string> observations;
  std::vector<MaintenanceReport> reports;
  uint64_t cache_hits = 0;
};

}  // namespace

std::string NormalizeMaintTrace(const std::string& trace) {
  std::string out;
  size_t pos = 0;
  int skip_deeper_than = -1;
  while (pos < trace.size()) {
    size_t end = trace.find('\n', pos);
    if (end == std::string::npos) end = trace.size();
    std::string line = trace.substr(pos, end - pos);
    pos = end + 1;
    if (line.rfind("trace (", 0) == 0) {
      out += "trace\n";
      continue;
    }
    size_t indent = 0;
    while (indent < line.size() && line[indent] == ' ') ++indent;
    if (skip_deeper_than >= 0) {
      if (static_cast<int>(indent) > skip_deeper_than) continue;
      skip_deeper_than = -1;
    }
    // The plan-search subtree exists only on cold misses; drop it (and
    // every nested rewrite span) wherever it appears.
    if (line.find("- mediator.plan_search") != std::string::npos) {
      skip_deeper_than = static_cast<int>(indent);
      continue;
    }
    // Cache-hit attribution is the one annotation the arms disagree on by
    // design.
    for (const char* marker : {" plan_cache=hit", " plan_cache=miss"}) {
      size_t at = line.find(marker);
      if (at != std::string::npos) line.erase(at, strlen(marker));
    }
    out += line;
    out += '\n';
  }
  return out;
}

Result<MaintDrillResult> RunMaintDifferentialDrill(
    const MaintDrillOptions& options) {
  const size_t parallelism = std::max<size_t>(options.parallelism, 1);
  const size_t num_queries = std::max<size_t>(options.num_queries, 1);
  const size_t base_views = std::max<size_t>(options.base_views, 2);

  // --- Fixtures, all derived from the drill seed. ---
  GeneratorOptions gen;
  gen.seed = options.seed * 0x9E3779B97F4A7C15ULL + 11;
  gen.num_roots = 10;
  gen.max_depth = 2;
  gen.num_labels = 4;
  gen.num_values = 4;
  gen.root_label = "rec";
  SourceCatalog catalog;
  catalog.Put(GenerateOemDatabase("db", gen));

  testing::RandomRules rules(options.seed ^ 0x5155u, 4, 4, "rec");
  std::vector<TslQuery> queries;
  for (size_t q = 0; q < num_queries; ++q) {
    queries.push_back(rules.Query(StrCat("Q", q), "db"));
  }

  // A DTD that permits only l0..l2 under `rec`: toggling it on makes the
  // chase fire structural conflicts on l3 conditions (constraint-change
  // swaps must full-flush; fired constraints land in footprints).
  auto dtd = Dtd::Parse(
      "<!ELEMENT rec (l0*, l1*, l2*)> <!ELEMENT l0 CDATA>");
  if (!dtd.ok()) return dtd.status();
  const StructuralConstraints constraints(std::move(dtd).ValueOrDie());

  // --- The mutation script, generated once and replayed by both arms. ---
  std::map<size_t, ViewState> live;
  size_t next_id = 0;
  for (size_t v = 0; v < base_views; ++v) {
    ViewState state;
    state.kind = v % 3;
    state.body_label = static_cast<int>(v % 4);
    live[next_id++] = state;
  }
  auto render_catalog = [&live]() {
    std::vector<Capability> caps;
    for (const auto& [id, state] : live) {
      caps.push_back(MakeDrillView(id, state));
    }
    return caps;
  };
  const std::vector<Capability> initial = render_catalog();

  DeterministicRng rng(options.seed * 0x2545F4914F6CDD1DULL + 3);
  bool constraints_on = false;
  std::vector<DrillStep> script;
  for (size_t s = 0; s < options.steps; ++s) {
    DrillStep step;
    const uint64_t kind = rng.NextUint64() % 8;
    auto pick_live = [&]() {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.NextUint64() % live.size()));
      return it;
    };
    if (kind == 0) {
      step.description = "identity swap";
    } else if (kind == 1) {
      auto it = pick_live();
      it->second.alpha++;
      step.description = StrCat("alpha-rename V", it->first);
    } else if (kind <= 3) {
      auto it = pick_live();
      // A wildcard-label view's body ignores body_label; demote it to the
      // constant-label shape so every "edit body" really edits the rule.
      if (it->second.kind == 2) it->second.kind = 0;
      it->second.body_label = (it->second.body_label + 1) % 4;
      step.description = StrCat("edit body of V", it->first);
    } else if (kind == 4) {
      ViewState state;
      state.kind = rng.NextUint64() % 3;
      state.body_label = static_cast<int>(rng.NextUint64() % 4);
      step.description = StrCat("add V", next_id);
      live[next_id++] = state;
    } else if (kind == 5 && live.size() > 2) {
      auto it = pick_live();
      step.description = StrCat("remove V", it->first);
      live.erase(it);
    } else if (kind == 6) {
      constraints_on = !constraints_on;
      step.description =
          constraints_on ? "attach constraints" : "detach constraints";
    } else {
      auto it = pick_live();
      it->second.alpha++;
      step.description = StrCat("alpha-rename V", it->first);
    }
    step.capabilities = render_catalog();
    step.with_constraints = constraints_on;
    for (size_t r = 0; r < options.requests_per_step; ++r) {
      step.requests.emplace_back(rng.NextUint64() % queries.size(),
                                 rng.NextUint64());
    }
    script.push_back(std::move(step));
  }

  // --- Replay one arm. ---
  auto run_arm = [&](MaintenanceMode mode) -> Result<ArmResult> {
    ServerOptions server = options.server;
    server.maintenance = mode;
    server.threads = std::max(server.threads, parallelism);
    ClusterOptions cluster;
    cluster.shards = std::max<size_t>(options.shards, 1);
    cluster.server = server;
    Result<Mediator> made =
        Mediator::Make({SourceDescription{"db", initial}});
    if (!made.ok()) return made.status();
    ShardRouter router(std::move(made).ValueOrDie(), catalog, cluster);

    ArmResult arm;
    for (const DrillStep& step : script) {
      Result<Mediator> next = Mediator::Make(
          {SourceDescription{"db", step.capabilities}},
          step.with_constraints ? &constraints : nullptr);
      if (next.ok()) {
        arm.reports.push_back(
            router.ReplaceMediator(std::move(next).ValueOrDie()));
      } else {
        // A rejected catalog is skipped — deterministically, in both arms
        // — and recorded so the arms must agree on the rejection too.
        arm.reports.push_back({});
        arm.observations.push_back(
            StrCat("swap rejected: ", next.status().ToString()));
      }

      if (parallelism == 1) {
        for (const auto& [query_index, seed] : step.requests) {
          ServeOptions serve;
          serve.seed = seed;
          Tracer tracer(nullptr);
          serve.tracer = &tracer;
          Result<ServeResponse> response =
              router.Answer(queries[query_index], serve);
          arm.observations.push_back(
              RenderObservation(queries[query_index], seed, response,
                                NormalizeMaintTrace(tracer.ToText())));
        }
      } else {
        // Concurrent burst: per-request tracers at stable addresses, and
        // observations recorded in submission order, so scheduling cannot
        // reorder the comparison.
        std::vector<std::unique_ptr<Tracer>> tracers;
        std::vector<std::future<Result<ServeResponse>>> futures;
        for (const auto& [query_index, seed] : step.requests) {
          ServeOptions serve;
          serve.seed = seed;
          tracers.push_back(std::make_unique<Tracer>(nullptr));
          serve.tracer = tracers.back().get();
          auto submitted =
              router.Submit(queries[query_index], std::move(serve));
          if (!submitted.ok()) {
            return Status::Internal(
                StrCat("maint drill overflowed a shard queue: ",
                       submitted.status().ToString()));
          }
          futures.push_back(std::move(submitted).ValueOrDie());
        }
        for (size_t r = 0; r < futures.size(); ++r) {
          const auto& [query_index, seed] = step.requests[r];
          Result<ServeResponse> response = futures[r].get();
          arm.observations.push_back(RenderObservation(
              queries[query_index], seed, response,
              NormalizeMaintTrace(tracers[r]->ToText())));
        }
      }
    }
    arm.cache_hits = router.stats().TotalPlanCache().hits;
    router.Shutdown();
    return arm;
  };

  Result<ArmResult> selective = run_arm(MaintenanceMode::kSelective);
  if (!selective.ok()) return selective.status();
  Result<ArmResult> flush = run_arm(MaintenanceMode::kFullFlush);
  if (!flush.ok()) return flush.status();

  // --- Compare. ---
  MaintDrillResult result;
  result.selective_hits = selective->cache_hits;
  result.flush_hits = flush->cache_hits;
  for (size_t s = 0; s < script.size(); ++s) {
    const MaintenanceReport& report = selective->reports[s];
    result.entries_examined += report.entries_examined;
    result.entries_invalidated += report.entries_invalidated;
    result.entries_retained += report.entries_retained;
    result.report += StrCat("step ", s, ": ", script[s].description,
                            " -> ", report.ToString(), "\n");
  }
  if (selective->observations.size() != flush->observations.size()) {
    result.identical = false;
    result.divergences.push_back(
        StrCat("observation counts differ: selective ",
               selective->observations.size(), " vs full-flush ",
               flush->observations.size()));
    return result;
  }
  for (size_t i = 0; i < selective->observations.size(); ++i) {
    const std::string& a = selective->observations[i];
    const std::string& b = flush->observations[i];
    if (a == b) continue;
    result.identical = false;
    // Locate the first differing line for the evidence record.
    size_t at = 0;
    while (at < std::min(a.size(), b.size()) && a[at] == b[at]) ++at;
    size_t line_start = a.rfind('\n', at);
    line_start = line_start == std::string::npos ? 0 : line_start + 1;
    result.divergences.push_back(StrCat(
        "observation ", i, " diverges at byte ", at, ":\n  selective: ",
        a.substr(line_start, 160), "\n  full-flush: ",
        b.substr(std::min(line_start, b.size()), 160)));
  }
  return result;
}

}  // namespace tslrw
