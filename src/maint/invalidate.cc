#include "maint/invalidate.h"

#include "common/string_util.h"
#include "rewrite/candidate.h"
#include "rewrite/chase.h"
#include "tsl/validate.h"

namespace tslrw {

InvalidationDecider::InvalidationDecider(
    const CatalogDelta& delta,
    const std::vector<SourceDescription>& new_sources,
    const StructuralConstraints* new_constraints) {
  if (delta.empty()) {
    no_op_ = true;
    return;
  }
  if (delta.constraints_changed) {
    full_flush_ = true;
    flush_reason_ = "constraints changed";
    return;
  }
  if (delta.exempt_hazard) {
    full_flush_ = true;
    flush_reason_ =
        "a delta view name doubles as a source referenced by a view body";
    return;
  }

  std::set<std::string> probe_names;
  for (const CatalogDeltaEntry& e : delta.added) {
    probe_names.insert(e.name);
    exempt_delta_names_.insert(e.name);
  }
  for (const CatalogDeltaEntry& e : delta.removed) {
    exempt_delta_names_.insert(e.name);
  }
  for (const CatalogDeltaEntry& e : delta.changed) probe_names.insert(e.name);

  ChaseOptions chase_options;
  chase_options.constraints = new_constraints;
  for (const SourceDescription& source : new_sources) {
    for (const Capability& cap : source.capabilities) {
      chase_options.constraint_exempt_sources.insert(cap.view.name);
      new_fingerprints_[cap.view.name] ^= ViewIdentityFingerprint(cap);
    }
  }
  for (const SourceDescription& source : new_sources) {
    for (const Capability& cap : source.capabilities) {
      if (probe_names.count(cap.view.name) == 0) continue;
      if (UsesRegexSteps(cap.view)) {
        // A regex view makes every fresh plan search fail (\S7 future
        // work); retained entries would diverge from that failure.
        full_flush_ = true;
        flush_reason_ =
            StrCat("view ", cap.view.name, " uses regular path expressions");
        return;
      }
      Result<TslQuery> chased = ChaseQuery(cap.view, chase_options);
      if (!chased.ok()) {
        if (chased.status().IsUnsatisfiable()) continue;  // always empty
        full_flush_ = true;
        flush_reason_ = StrCat("chasing view ", cap.view.name,
                               " failed: ", chased.status().ToString());
        return;
      }
      probe_views_.push_back(std::move(chased).value());
    }
  }
}

bool InvalidationDecider::ShouldInvalidate(
    const PlanFootprint& footprint) const {
  if (no_op_) return false;
  if (full_flush_) return true;
  if (!footprint.captured) return true;
  for (const std::string& name : footprint.view_names) {
    auto recorded = footprint.view_fingerprints.find(name);
    if (recorded == footprint.view_fingerprints.end()) return true;
    auto current = new_fingerprints_.find(name);
    if (current == new_fingerprints_.end() ||
        current->second != recorded->second) {
      return true;
    }
  }
  for (const std::string& source : footprint.query_sources) {
    if (exempt_delta_names_.count(source) > 0) return true;
  }
  // From here on every view the search consulted is identical in the new
  // catalog and the query's chase environment is unchanged; only views the
  // search did not consult were added or changed.
  if (footprint.query_unsatisfiable) return false;
  for (const TslQuery& view : probe_views_) {
    size_t mappings = 0;
    Result<std::vector<CandidateAtom>> atoms =
        BuildCandidateAtoms(footprint.chased_query, {view}, &mappings);
    if (!atoms.ok()) return true;  // conservative: cannot prove retention
    for (const CandidateAtom& atom : *atoms) {
      if (atom.is_view) return true;  // the new body maps into this query
    }
  }
  return false;
}

}  // namespace tslrw
