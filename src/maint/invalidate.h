#ifndef TSLRW_MAINT_INVALIDATE_H_
#define TSLRW_MAINT_INVALIDATE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "catalog/diff.h"
#include "constraints/inference.h"
#include "maint/footprint.h"
#include "tsl/ast.h"

namespace tslrw {

/// \brief Per-entry invalidation oracle for one catalog delta: built once
/// per mutation (it pre-chases the delta's new views), then consulted for
/// every cached plan set. The contract is one-sided exactness:
///
///   ShouldInvalidate(footprint) == false  =>  a fresh plan search against
///   the new catalog provably returns a byte-identical plan set.
///
/// The converse direction (invalidate only when the plans really change) is
/// best-effort — over-invalidation costs a recomputation, never
/// correctness — and is measured, not promised (tests/maint_property_test
/// reports the ratio).
///
/// The argument, case by case (docs/SERVING.md "Incremental maintenance"):
///  - constraints delta or exempt hazard: every chase in the pipeline may
///    differ => full flush.
///  - uncaptured footprint: no evidence => invalidate.
///  - a consulted view (`view_names`) whose recorded identity fingerprint
///    is not present verbatim in the new catalog (removed, changed, or the
///    entry predates the diffed snapshot): its candidate atoms may differ
///    => invalidate.
///  - an added/removed view name the *query body* references: the query is
///    chased under a different constraint-exempt set => invalidate.
///  - unsatisfiable query: the empty plan set survives any view delta.
///  - otherwise only added/changed views the search did NOT consult remain;
///    the entry changes only if such a view's new chased body admits a
///    containment mapping into the stored chased query — probed directly
///    with the rewriter's own BuildCandidateAtoms. No mapping, no new
///    candidate atom, byte-identical search => retain.
class InvalidationDecider {
 public:
  /// \param delta old-vs-new diff (catalog/diff.h).
  /// \param new_sources / \param new_constraints the catalog being swapped
  ///        in; both must outlive this call only (views are copied).
  InvalidationDecider(const CatalogDelta& delta,
                      const std::vector<SourceDescription>& new_sources,
                      const StructuralConstraints* new_constraints);

  /// Every entry must go (constraints delta, exempt hazard, or a probe
  /// chase failed hard). When set, skip per-entry checks and flush.
  bool full_flush() const { return full_flush_; }
  /// Human-readable cause when `full_flush()`.
  const std::string& flush_reason() const { return flush_reason_; }
  /// The delta is empty: nothing to do, every entry is exact as-is.
  bool no_op() const { return no_op_; }

  /// Whether the cached plan set behind \p footprint may differ under the
  /// new catalog. False is a proof of byte-identity (see above).
  bool ShouldInvalidate(const PlanFootprint& footprint) const;

 private:
  bool no_op_ = false;
  bool full_flush_ = false;
  std::string flush_reason_;
  /// The new catalog's identity fingerprints by view name: a consulted
  /// view survives only if its recorded (name, fingerprint) pair is still
  /// present verbatim here.
  std::map<std::string, uint64_t> new_fingerprints_;
  /// Added + removed names: one of these in a query body means the query's
  /// constraint-exempt set changed.
  std::set<std::string> exempt_delta_names_;
  /// Chased new bodies of added/changed views (unsatisfiable ones dropped:
  /// an always-empty view admits no mapping), probed per entry.
  std::vector<TslQuery> probe_views_;
};

}  // namespace tslrw

#endif  // TSLRW_MAINT_INVALIDATE_H_
