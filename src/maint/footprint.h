#ifndef TSLRW_MAINT_FOOTPRINT_H_
#define TSLRW_MAINT_FOOTPRINT_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "tsl/ast.h"

namespace tslrw {

/// \brief The dependency footprint of one cached plan set: everything the
/// rewriting search consulted that a catalog mutation could change. Captured
/// by Mediator::Plan from RewriteResult and carried on MediatorPlanSet, so
/// the maintenance layer (src/maint/invalidate.h) can decide, per cache
/// entry, whether a catalog delta can possibly affect it.
///
/// Header-only on purpose: mediator code fills it and service code reads
/// it, and this file sitting below both keeps the library graph acyclic
/// (maint's decider links mediator+catalog; service links maint).
struct PlanFootprint {
  /// False for plan sets produced before footprint capture existed (or by
  /// paths that skip it). The decider treats uncaptured entries as
  /// depending on everything — they are invalidated by any delta.
  bool captured = false;

  /// Views whose chased bodies admitted at least one containment mapping
  /// into the chased query (RewriteResult::views_touched) — a superset of
  /// the views the winning plans use. Removing or editing a view outside
  /// this set cannot change the candidate-atom list, hence not the plans.
  std::set<std::string> view_names;

  /// Identity fingerprint (mediator/capability.h ViewIdentityFingerprint)
  /// of *every* capability in the catalog the plans were computed against,
  /// keyed by view name. Lets the decider distinguish "view v changed"
  /// from "a different view named v existed" without keeping the views.
  std::map<std::string, uint64_t> view_fingerprints;

  /// Source names referenced by the *input* query's body conditions. A
  /// delta that adds or removes a view with one of these names changes the
  /// constraint-exempt set the query is chased under, so the entry must go.
  std::set<std::string> query_sources;

  /// Stable keys of constraint rules that fired while chasing the inputs
  /// (RewriteResult::fired_constraints). Observability only: any
  /// constraints delta flushes the whole cache (see invalidate.h).
  std::set<std::string> fired_constraints;

  /// The chased input query; target of the add-side probe (can the new
  /// view's chased body map into it?). Meaningless when
  /// `query_unsatisfiable` is set.
  TslQuery chased_query;

  /// The chase proved the query empty under the constraints; view deltas
  /// cannot resurrect it, so the entry survives any non-constraint delta.
  bool query_unsatisfiable = false;
};

}  // namespace tslrw

#endif  // TSLRW_MAINT_FOOTPRINT_H_
