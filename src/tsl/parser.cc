#include "tsl/parser.h"

#include <cctype>
#include <map>

#include "common/lexer.h"
#include "common/string_util.h"

namespace tslrw {

namespace {

bool LooksLikeVariable(const std::string& ident) {
  return !ident.empty() && std::isupper(static_cast<unsigned char>(ident[0]));
}

/// Parses a term; all variables provisionally get VarKind::kLabelValue and
/// are re-sorted by ResolveVariableKinds once the whole rule is known.
Result<Term> ParseTerm(TokenCursor* cur) {
  const Token& tok = cur->Peek();
  if (tok.kind == TokenKind::kString) {
    return Term::MakeAtom(cur->Next().text);
  }
  if (tok.kind != TokenKind::kIdent) {
    return cur->ErrorHere("expected a term");
  }
  std::string head = cur->Next().text;
  if (cur->TryConsume(TokenKind::kLParen)) {
    std::vector<Term> args;
    if (!cur->TryConsume(TokenKind::kRParen)) {
      while (true) {
        TSLRW_ASSIGN_OR_RETURN(Term arg, ParseTerm(cur));
        args.push_back(std::move(arg));
        if (cur->TryConsume(TokenKind::kComma)) continue;
        TSLRW_RETURN_NOT_OK(cur->Expect(TokenKind::kRParen).status());
        break;
      }
    }
    return Term::MakeFunc(std::move(head), std::move(args));
  }
  if (LooksLikeVariable(head)) {
    return Term::MakeVar(std::move(head), VarKind::kLabelValue);
  }
  return Term::MakeAtom(std::move(head));
}

Result<ObjectPattern> ParsePattern(TokenCursor* cur, int* anon_labels) {
  TSLRW_ASSIGN_OR_RETURN(Token langle, cur->Expect(TokenKind::kLAngle));
  ObjectPattern pattern;
  pattern.span = SourceSpan{langle.line, langle.column};
  TSLRW_ASSIGN_OR_RETURN(pattern.oid, ParseTerm(cur));
  // Label position: `*` (any label), `**` (descendant), `label+` (closure),
  // or a plain term. The starred forms are the \S7 regular-path-expression
  // extension.
  if (cur->TryConsume(TokenKind::kStar)) {
    if (cur->TryConsume(TokenKind::kStar)) {
      pattern.step = StepKind::kDescendant;
      pattern.label = Term::MakeAtom("**");  // unused sentinel
    } else {
      pattern.label = Term::MakeVar(StrCat("AnonLabel", ++*anon_labels),
                                    VarKind::kLabelValue);
    }
  } else {
    Token label_tok = cur->Peek();
    TSLRW_ASSIGN_OR_RETURN(pattern.label, ParseTerm(cur));
    if (pattern.label.is_func()) {
      return ErrorAtToken(label_tok, "a label must be an atom or a variable");
    }
    if (cur->TryConsume(TokenKind::kPlus)) {
      if (!pattern.label.is_atom()) {
        return ErrorAtToken(label_tok, "a closure step needs a constant label");
      }
      pattern.step = StepKind::kClosure;
    }
  }
  if (cur->TryConsume(TokenKind::kLBrace)) {
    SetPattern members;
    while (!cur->TryConsume(TokenKind::kRBrace)) {
      TSLRW_ASSIGN_OR_RETURN(ObjectPattern member,
                             ParsePattern(cur, anon_labels));
      members.push_back(std::move(member));
    }
    pattern.value = PatternValue::FromSet(std::move(members));
  } else {
    TSLRW_ASSIGN_OR_RETURN(Term value, ParseTerm(cur));
    pattern.value = PatternValue::FromTerm(std::move(value));
  }
  TSLRW_RETURN_NOT_OK(cur->Expect(TokenKind::kRAngle).status());
  return pattern;
}

Result<TslQuery> ParseRule(TokenCursor* cur, std::string name) {
  SourceSpan rule_span{cur->Peek().line, cur->Peek().column};
  // Optional paper-style "(Q3)" rule name prefix.
  if (cur->Peek().kind == TokenKind::kLParen) {
    cur->Next();
    TSLRW_ASSIGN_OR_RETURN(Token name_tok, cur->Expect(TokenKind::kIdent));
    TSLRW_RETURN_NOT_OK(cur->Expect(TokenKind::kRParen).status());
    if (name.empty()) name = name_tok.text;
  }
  TslQuery query;
  query.name = std::move(name);
  query.span = rule_span;
  int anon_labels = 0;
  TSLRW_ASSIGN_OR_RETURN(query.head, ParsePattern(cur, &anon_labels));
  TSLRW_RETURN_NOT_OK(cur->Expect(TokenKind::kTurnstile).status());
  while (true) {
    Condition cond;
    TSLRW_ASSIGN_OR_RETURN(cond.pattern, ParsePattern(cur, &anon_labels));
    if (cur->TryConsume(TokenKind::kAt)) {
      TSLRW_ASSIGN_OR_RETURN(Token src, cur->Expect(TokenKind::kIdent));
      cond.source = src.text;
    }
    query.body.push_back(std::move(cond));
    if (!cur->TryConsumeIdent("AND")) break;
  }
  return ResolveVariableKinds(query);
}

/// Where a variable name has been seen; used to resolve V_O vs V_C.
enum class Position { kNeutral, kObjectId, kLabelValue };

class KindResolver {
 public:
  /// Records uses. \p in_args is true while descending into function-term
  /// arguments, where either sort may legally appear. \p span is the
  /// position of the enclosing pattern, kept for error messages.
  void NoteTerm(const Term& t, Position pos, bool in_args, SourceSpan span) {
    switch (t.kind()) {
      case TermKind::kAtom:
        return;
      case TermKind::kVariable:
        Note(t.var_name(), in_args ? Position::kNeutral : pos, span);
        return;
      case TermKind::kFunction:
        for (const Term& a : t.args()) {
          NoteTerm(a, pos, /*in_args=*/true, span);
        }
        return;
    }
  }

  void NotePattern(const ObjectPattern& p) {
    NoteTerm(p.oid, Position::kObjectId, /*in_args=*/false, p.span);
    NoteTerm(p.label, Position::kLabelValue, /*in_args=*/false, p.span);
    if (p.value.is_term()) {
      NoteTerm(p.value.term(), Position::kLabelValue, /*in_args=*/false,
               p.span);
    } else {
      for (const ObjectPattern& m : p.value.set()) NotePattern(m);
    }
  }

  /// Fails iff some name occurs in both oid and label/value positions.
  Status Check() const {
    for (const auto& [name, use] : uses_) {
      if (use.as_oid && use.as_label_value) {
        std::string where;
        if (use.oid_span.valid() && use.label_value_span.valid()) {
          where = StrCat(" (object id at ", use.oid_span.ToString(),
                         ", label/value at ",
                         use.label_value_span.ToString(), ")");
        }
        return Status::IllFormedQuery(
            StrCat("variable ", name,
                   " is used both as an object id and as a label/value",
                   where, "; V_O and V_C must be disjoint"));
      }
    }
    return Status::OK();
  }

  VarKind KindOf(const std::string& name) const {
    auto it = uses_.find(name);
    if (it == uses_.end()) return VarKind::kObjectId;
    if (it->second.as_oid) return VarKind::kObjectId;
    if (it->second.as_label_value) return VarKind::kLabelValue;
    // Seen only inside function-term arguments (e.g. X in `h(X)` when the
    // rule's body is an instantiated view head): Skolem arguments carry
    // source oids, so object-id is the sort that round-trips.
    return VarKind::kObjectId;
  }

 private:
  struct Uses {
    bool as_oid = false;
    bool as_label_value = false;
    SourceSpan oid_span;
    SourceSpan label_value_span;
  };

  void Note(const std::string& name, Position pos, SourceSpan span) {
    Uses& entry = uses_[name];
    if (pos == Position::kObjectId && !entry.as_oid) {
      entry.as_oid = true;
      entry.oid_span = span;
    }
    if (pos == Position::kLabelValue && !entry.as_label_value) {
      entry.as_label_value = true;
      entry.label_value_span = span;
    }
  }

  std::map<std::string, Uses> uses_;
};

Term Resort(const Term& t, const KindResolver& resolver) {
  switch (t.kind()) {
    case TermKind::kAtom:
      return t;
    case TermKind::kVariable:
      return Term::MakeVar(t.var_name(), resolver.KindOf(t.var_name()));
    case TermKind::kFunction: {
      std::vector<Term> args;
      args.reserve(t.args().size());
      for (const Term& a : t.args()) args.push_back(Resort(a, resolver));
      return Term::MakeFunc(t.functor(), std::move(args));
    }
  }
  return t;
}

ObjectPattern ResortPattern(const ObjectPattern& p,
                            const KindResolver& resolver) {
  ObjectPattern out;
  out.oid = Resort(p.oid, resolver);
  out.label = Resort(p.label, resolver);
  out.step = p.step;
  out.span = p.span;
  if (p.value.is_term()) {
    out.value = PatternValue::FromTerm(Resort(p.value.term(), resolver));
  } else {
    SetPattern members;
    members.reserve(p.value.set().size());
    for (const ObjectPattern& m : p.value.set()) {
      members.push_back(ResortPattern(m, resolver));
    }
    out.value = PatternValue::FromSet(std::move(members));
  }
  return out;
}

}  // namespace

Result<TslQuery> ResolveVariableKinds(const TslQuery& query) {
  KindResolver resolver;
  resolver.NotePattern(query.head);
  for (const Condition& c : query.body) resolver.NotePattern(c.pattern);
  TSLRW_RETURN_NOT_OK(resolver.Check());
  TslQuery out;
  out.name = query.name;
  out.span = query.span;
  out.head = ResortPattern(query.head, resolver);
  out.body.reserve(query.body.size());
  for (const Condition& c : query.body) {
    out.body.push_back(Condition{ResortPattern(c.pattern, resolver), c.source});
  }
  return out;
}

Result<TslQuery> ParseTslQuery(std::string_view text, std::string name) {
  TSLRW_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  TokenCursor cur(std::move(tokens));
  TSLRW_ASSIGN_OR_RETURN(TslQuery query, ParseRule(&cur, std::move(name)));
  if (!cur.AtEof()) {
    return cur.ErrorHere("trailing input after rule");
  }
  return query;
}

Result<std::vector<TslQuery>> ParseTslProgram(std::string_view text) {
  TSLRW_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  TokenCursor cur(std::move(tokens));
  std::vector<TslQuery> rules;
  while (!cur.AtEof()) {
    TSLRW_ASSIGN_OR_RETURN(TslQuery rule, ParseRule(&cur, ""));
    rules.push_back(std::move(rule));
  }
  return rules;
}

}  // namespace tslrw
