#ifndef TSLRW_TSL_AST_H_
#define TSLRW_TSL_AST_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/source_span.h"
#include "oem/term.h"

namespace tslrw {

struct ObjectPattern;

/// A set value pattern `{ <o1> ... <on> }` (\S2). Under the paper's subset
/// semantics a set pattern requires the matched object to be set-valued and
/// to contain a (not necessarily distinct-id) match for each member; the
/// object "may also have other subobjects".
using SetPattern = std::vector<ObjectPattern>;

/// \brief The value field of an object pattern: either a term (variable,
/// atomic constant, or function term) or a set pattern (possibly empty).
class PatternValue {
 public:
  /// A term value. Atomic constants, label/value variables, or (in heads)
  /// function terms.
  static PatternValue FromTerm(Term t);
  /// A set pattern `{...}`; an empty set pattern matches any set object.
  static PatternValue FromSet(SetPattern members);

  /// Default: the empty set pattern.
  PatternValue() = default;

  bool is_term() const { return term_.has_value(); }
  bool is_set() const { return !is_term(); }

  const Term& term() const { return *term_; }
  const SetPattern& set() const { return members_; }
  SetPattern& mutable_set() { return members_; }

  std::string ToString() const;

  friend bool operator==(const PatternValue& a, const PatternValue& b);
  friend bool operator!=(const PatternValue& a, const PatternValue& b) {
    return !(a == b);
  }
  friend bool operator<(const PatternValue& a, const PatternValue& b);

 private:
  std::optional<Term> term_;
  SetPattern members_;
};

/// \brief How an object pattern is reached from its parent — plain TSL
/// uses only kChild; the other two are the regular-path-expression
/// extension the paper defers to future work (\S7), supported by the
/// evaluator (and rejected, explicitly, by the rewriting pipeline).
enum class StepKind : uint8_t {
  /// A direct subobject (`<Y l V>`), the \S2 semantics.
  kChild,
  /// `<Y l+ V>`: Y is reached through one or more edges into l-labeled
  /// objects (a chain parent -> o1 -> ... -> ok = Y, every oi labeled l).
  kClosure,
  /// `<Y ** V>`: Y is any proper descendant of the parent, through any
  /// labels; the label field is the unused sentinel atom `**`.
  kDescendant,
};

/// \brief An object pattern `<oid label value>` (\S2).
///
/// In query bodies the oid field is an object-id variable or a ground oid;
/// in heads it is a function term over body variables (a Skolem id). The
/// label is an atom or a label variable. The value is a PatternValue.
struct ObjectPattern {
  Term oid;
  Term label;
  PatternValue value;
  /// Edge semantics from the enclosing pattern; meaningful only for
  /// members of set patterns in bodies (top-level conditions and heads are
  /// always kChild).
  StepKind step = StepKind::kChild;
  /// Position of the pattern's opening `<` in the text it was parsed from;
  /// unknown (invalid) for programmatically built patterns. Ignored by
  /// equality/ordering; preserved by substitution and re-sorting so
  /// diagnostics can point into the original rule text.
  SourceSpan span = {};

  std::string ToString() const;

  /// Inserts all variables in oid/label/value (recursively) into \p out.
  void CollectVariables(std::set<Term>* out) const;

  friend bool operator==(const ObjectPattern& a, const ObjectPattern& b);
  friend bool operator!=(const ObjectPattern& a, const ObjectPattern& b) {
    return !(a == b);
  }
  friend bool operator<(const ObjectPattern& a, const ObjectPattern& b);
};

/// \brief One body condition: an object pattern to be matched against the
/// roots of a named source (`<...>@db`).
struct Condition {
  ObjectPattern pattern;
  /// Source (database or view) name following '@'. TSL queries may refer to
  /// more than one source (\S2).
  std::string source;

  std::string ToString() const;

  friend bool operator==(const Condition& a, const Condition& b) {
    return a.source == b.source && a.pattern == b.pattern;
  }
  friend bool operator<(const Condition& a, const Condition& b) {
    if (a.source != b.source) return a.source < b.source;
    return a.pattern < b.pattern;
  }
};

/// \brief A TSL query (equivalently, a TSL view definition): a head object
/// pattern and a conjunctive body, `head :- cond1 AND ... AND condk` (\S2).
struct TslQuery {
  /// Rule name; for views this is also the source name the rewritten query
  /// uses after '@'.
  std::string name;
  ObjectPattern head;
  std::vector<Condition> body;
  /// Position of the rule's first token (the `(Name)` prefix if present,
  /// else the head's `<`); unknown for programmatic rules. Ignored by
  /// equality.
  SourceSpan span = {};

  std::string ToString() const;

  /// Variables of the head / of the body.
  std::set<Term> HeadVariables() const;
  std::set<Term> BodyVariables() const;

  /// Names of every source mentioned in the body.
  std::set<std::string> Sources() const;

  friend bool operator==(const TslQuery& a, const TslQuery& b) {
    return a.head == b.head && a.body == b.body;
  }
};

/// \brief A union of TSL rules contributing to one answer graph.
///
/// Single TSL rules are the paper's queries; rule sets arise from query-view
/// composition (\S3.1 Step 2A), whose resolution step can produce one rule
/// per unifier. The \S4 equivalence test is defined on the union of the
/// rules' graph-component decompositions, so rule sets are first-class here.
struct TslRuleSet {
  std::vector<TslQuery> rules;

  std::string ToString() const;

  static TslRuleSet Single(TslQuery q) { return TslRuleSet{{std::move(q)}}; }
};

/// \brief Renders `<oid label value>` patterns, conditions, and rules in the
/// paper's concrete syntax; inverse of ParseTslQuery.
std::string ToString(const SetPattern& set);

/// \brief Applies a term-level substitution to every term in the pattern
/// (oid, label, terms in values, recursively).
ObjectPattern ApplyTermSubstitution(const TermSubstitution& subst,
                                    const ObjectPattern& pattern);
TslQuery ApplyTermSubstitution(const TermSubstitution& subst,
                               const TslQuery& query);

/// \brief Renames every variable of \p query by appending \p suffix,
/// preserving sorts. Used to keep view-body variables apart from the
/// rewriting's variables during composition (each view instantiation gets
/// its own variable space).
TslQuery RenameVariablesApart(const TslQuery& query,
                              const std::string& suffix);

/// \brief Returns \p query with every unannotated body condition qualified
/// by \p source.
TslQuery WithDefaultSource(TslQuery query, const std::string& source);

}  // namespace tslrw

#endif  // TSLRW_TSL_AST_H_
