#include "tsl/canonical.h"

#include <algorithm>
#include <set>
#include <vector>

#include "common/string_util.h"

namespace tslrw {

namespace {

/// Appends every variable in \p t to \p out in a fixed structural order,
/// skipping variables already seen. This — not std::set iteration — defines
/// the canonical numbering, so it must be deterministic and independent of
/// the variables' current names.
void CollectOrdered(const Term& t, std::vector<Term>* out,
                    std::set<Term>* seen) {
  switch (t.kind()) {
    case TermKind::kAtom:
      return;
    case TermKind::kVariable:
      if (seen->insert(t).second) out->push_back(t);
      return;
    case TermKind::kFunction:
      for (const Term& arg : t.args()) CollectOrdered(arg, out, seen);
      return;
  }
}

void CollectOrdered(const ObjectPattern& p, std::vector<Term>* out,
                    std::set<Term>* seen) {
  CollectOrdered(p.oid, out, seen);
  CollectOrdered(p.label, out, seen);
  if (p.value.is_term()) {
    CollectOrdered(p.value.term(), out, seen);
  } else {
    for (const ObjectPattern& m : p.value.set()) CollectOrdered(m, out, seen);
  }
}

/// Renames every variable to `O<i>` / `C<i>` (by sort) in first-occurrence
/// order over head then body. Simultaneous application keeps this correct
/// even when the input already uses names from the target alphabet. When
/// \p applied is non-null the pass's own renaming is reported through it, so
/// the caller can compose per-round renamings into an input-to-canonical map.
TslQuery RenameFirstOccurrence(const TslQuery& query,
                               TermSubstitution* applied = nullptr) {
  std::vector<Term> order;
  std::set<Term> seen;
  CollectOrdered(query.head, &order, &seen);
  for (const Condition& c : query.body) {
    CollectOrdered(c.pattern, &order, &seen);
  }
  TermSubstitution renaming;
  size_t next_oid = 0;
  size_t next_cval = 0;
  for (const Term& v : order) {
    const bool is_oid = v.var_kind() == VarKind::kObjectId;
    std::string name = is_oid ? StrCat("O", next_oid++)
                              : StrCat("C", next_cval++);
    renaming.Bind(v, Term::MakeVar(std::move(name), v.var_kind()));
  }
  TslQuery renamed = ApplyTermSubstitution(renaming, query);
  if (applied != nullptr) *applied = std::move(renaming);
  return renamed;
}

/// A substitution that blinds variable identities but keeps their sorts:
/// used to order conditions by *shape* before any names exist.
TermSubstitution BlindSubstitution(const TslQuery& query) {
  std::set<Term> vars = query.HeadVariables();
  for (const Term& v : query.BodyVariables()) vars.insert(v);
  TermSubstitution blind;
  for (const Term& v : vars) {
    const bool is_oid = v.var_kind() == VarKind::kObjectId;
    blind.Bind(v, Term::MakeVar(is_oid ? "?o" : "?c", v.var_kind()));
  }
  return blind;
}

}  // namespace

CanonicalForm CanonicalizeQuery(const TslQuery& query) {
  return CanonicalizeQuery(query, nullptr);
}

CanonicalForm CanonicalizeQuery(const TslQuery& query,
                                std::map<Term, Term>* renaming) {
  TslQuery canon = query;
  canon.name.clear();
  canon.span = {};

  // The composed input-variable -> current-name map, threaded through every
  // renaming round below. Sorting passes never rename, so composing just the
  // per-round substitutions is exact.
  std::map<Term, Term> total;
  if (renaming != nullptr) {
    std::set<Term> vars = canon.HeadVariables();
    for (const Term& v : canon.BodyVariables()) vars.insert(v);
    for (const Term& v : vars) total.emplace(v, v);
  }
  auto compose = [&](const TermSubstitution& round) {
    if (renaming == nullptr) return;
    for (auto& [orig, cur] : total) cur = round.Apply(cur);
  };

  // Pass 1: order conditions by their name-blind shape, so the initial
  // numbering pass sees α-equivalent inputs in the same condition order.
  const TermSubstitution blind = BlindSubstitution(canon);
  std::stable_sort(
      canon.body.begin(), canon.body.end(),
      [&blind](const Condition& a, const Condition& b) {
        if (a.source != b.source) return a.source < b.source;
        return ApplyTermSubstitution(blind, a.pattern) <
               ApplyTermSubstitution(blind, b.pattern);
      });
  TermSubstitution round_renaming;
  canon = RenameFirstOccurrence(canon, &round_renaming);
  compose(round_renaming);

  // Refinement: with concrete canonical names, re-sorting can change the
  // condition order, which changes first-occurrence numbering — iterate to
  // a fixpoint (a handful of rounds in practice; the cap only guards
  // adversarially symmetric bodies, where any fixed ordering is sound).
  for (int round = 0; round < 8; ++round) {
    TslQuery next = canon;
    std::sort(next.body.begin(), next.body.end());
    next = RenameFirstOccurrence(next, &round_renaming);
    if (next == canon) break;
    canon = std::move(next);
    compose(round_renaming);
  }

  CanonicalForm form;
  form.key = canon.ToString();
  form.fingerprint = StableFingerprint(form.key);
  form.query = std::move(canon);
  if (renaming != nullptr) *renaming = std::move(total);
  return form;
}

uint64_t StableFingerprint(std::string_view bytes) {
  uint64_t hash = 14695981039346656037ULL;  // FNV offset basis
  for (unsigned char byte : bytes) {
    hash ^= byte;
    hash *= 1099511628211ULL;  // FNV prime
  }
  return hash;
}

}  // namespace tslrw
