#ifndef TSLRW_TSL_VALIDATE_H_
#define TSLRW_TSL_VALIDATE_H_

#include "common/status.h"
#include "tsl/ast.h"

namespace tslrw {

/// \brief Safety (\S2): every variable of the head also appears in the body
/// — the same syntactic test used for conjunctive queries.
Status CheckSafety(const TslQuery& query);

/// \brief Head oid discipline (\S2): the oid terms of distinct head object
/// patterns are syntactically distinct ("Terms that appear in an object id
/// field in the head of a TSL query must be unique"), the root head oid is
/// a function term (answers are trees rooted at freshly minted objects),
/// and no head oid is an atomic constant. Nested head patterns may carry
/// either function terms (constructed objects) or object-id variables —
/// the latter re-emit matched source objects, the copy semantics used by
/// the paper's (Q10) `<f(P) Stan-student {<X Y Z>}>`.
Status CheckHeadOids(const TslQuery& query);

/// \brief Rejects cyclic object patterns in the body (\S2: positive TSL
/// queries "without cyclic object patterns"): the graph over body oid terms
/// induced by the object–subobject pattern relation must be acyclic. This
/// is also what guarantees termination of the \S3.2 chase extension.
Status CheckAcyclicBody(const TslQuery& query);

/// \brief Regular-path steps (`l+`, `**`) are legal only as set-pattern
/// members in the body: heads construct concrete graphs and a condition's
/// top-level pattern matches roots directly.
Status CheckRegexStepPlacement(const TslQuery& query);

/// \brief True iff some body pattern uses a closure or descendant step.
/// The rewriting pipeline rejects such queries explicitly — rewriting with
/// regular path expressions is the paper's future work (\S7).
bool UsesRegexSteps(const TslQuery& query);

/// \brief All well-formedness checks for the rewriting pipeline: safety,
/// head oid discipline, body acyclicity, and regex-step placement.
/// (Variable-sort disjointness is enforced structurally by the parser /
/// ResolveVariableKinds.)
Status ValidateQuery(const TslQuery& query);

}  // namespace tslrw

#endif  // TSLRW_TSL_VALIDATE_H_
