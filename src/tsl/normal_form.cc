#include "tsl/normal_form.h"

#include <algorithm>

#include "common/string_util.h"

namespace tslrw {

namespace {

bool PatternIsNormal(const ObjectPattern& p) {
  if (p.value.is_term()) return true;
  if (p.value.set().size() > 1) return false;
  return p.value.set().empty() || PatternIsNormal(p.value.set().front());
}

/// Splits \p pattern into one single-path pattern per root-to-leaf path.
void SplitPattern(const ObjectPattern& pattern,
                  std::vector<ObjectPattern>* out) {
  if (pattern.value.is_term() || pattern.value.set().empty()) {
    out->push_back(pattern);
    return;
  }
  for (const ObjectPattern& member : pattern.value.set()) {
    std::vector<ObjectPattern> member_paths;
    SplitPattern(member, &member_paths);
    for (ObjectPattern& mp : member_paths) {
      ObjectPattern path;
      path.oid = pattern.oid;
      path.label = pattern.label;
      path.step = pattern.step;
      path.value = PatternValue::FromSet({std::move(mp)});
      out->push_back(std::move(path));
    }
  }
}

}  // namespace

bool IsNormalForm(const TslQuery& query) {
  return std::all_of(query.body.begin(), query.body.end(),
                     [](const Condition& c) {
                       return PatternIsNormal(c.pattern);
                     });
}

TslQuery ToNormalForm(const TslQuery& query) {
  TslQuery out;
  out.name = query.name;
  out.head = query.head;
  out.body.reserve(query.body.size());
  for (const Condition& cond : query.body) {
    if (PatternIsNormal(cond.pattern)) {
      // A normal pattern splits into exactly itself; skip the rebuild.
      if (std::find(out.body.begin(), out.body.end(), cond) ==
          out.body.end()) {
        out.body.push_back(cond);
      }
      continue;
    }
    std::vector<ObjectPattern> paths;
    SplitPattern(cond.pattern, &paths);
    for (ObjectPattern& p : paths) {
      Condition c{std::move(p), cond.source};
      if (std::find(out.body.begin(), out.body.end(), c) == out.body.end()) {
        out.body.push_back(std::move(c));
      }
    }
  }
  return out;
}

TslQuery ToNormalForm(TslQuery&& query) {
  if (IsNormalForm(query)) {
    // Dedupe in place: every condition is already a single path, and the
    // order of first occurrences is exactly what the copying conversion
    // produces.
    TslQuery out;
    out.name = std::move(query.name);
    out.head = std::move(query.head);
    out.body.reserve(query.body.size());
    for (Condition& cond : query.body) {
      if (std::find(out.body.begin(), out.body.end(), cond) ==
          out.body.end()) {
        out.body.push_back(std::move(cond));
      }
    }
    return out;
  }
  return ToNormalForm(static_cast<const TslQuery&>(query));
}

std::string Path::ToString() const {
  return UnflattenPath(*this).ToString();
}

Result<Path> FlattenPath(const Condition& condition) {
  Path path;
  path.source = condition.source;
  const ObjectPattern* cur = &condition.pattern;
  while (true) {
    path.steps.push_back(Path::Step{cur->oid, cur->label, cur->step});
    if (cur->value.is_term()) {
      path.tail = cur->value;
      return path;
    }
    const SetPattern& members = cur->value.set();
    if (members.empty()) {
      path.tail = PatternValue::FromSet({});
      return path;
    }
    if (members.size() > 1) {
      return Status::InvalidArgument(
          StrCat("condition is not in normal form: ",
                 condition.pattern.ToString()));
    }
    cur = &members.front();
  }
}

Result<std::vector<Path>> BodyPaths(const TslQuery& query) {
  std::vector<Path> paths;
  paths.reserve(query.body.size());
  for (const Condition& c : query.body) {
    TSLRW_ASSIGN_OR_RETURN(Path p, FlattenPath(c));
    paths.push_back(std::move(p));
  }
  return paths;
}

Condition UnflattenPath(const Path& path) {
  ObjectPattern pattern;
  pattern.oid = path.steps.back().oid;
  pattern.label = path.steps.back().label;
  pattern.step = path.steps.back().kind;
  pattern.value = path.tail;
  for (size_t i = path.steps.size() - 1; i-- > 0;) {
    ObjectPattern parent;
    parent.oid = path.steps[i].oid;
    parent.label = path.steps[i].label;
    parent.step = path.steps[i].kind;
    parent.value = PatternValue::FromSet({std::move(pattern)});
    pattern = std::move(parent);
  }
  return Condition{std::move(pattern), path.source};
}

}  // namespace tslrw
