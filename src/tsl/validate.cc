#include "tsl/validate.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/string_util.h"

namespace tslrw {

Status CheckSafety(const TslQuery& query) {
  std::set<Term> body_vars = query.BodyVariables();
  for (const Term& v : query.HeadVariables()) {
    if (body_vars.count(v) == 0) {
      return Status::IllFormedQuery(
          StrCat("unsafe query: head variable ", v.ToString(),
                 " does not appear in the body"));
    }
  }
  return Status::OK();
}

namespace {

void CollectHeadOids(const ObjectPattern& p, std::vector<Term>* oids) {
  oids->push_back(p.oid);
  if (p.value.is_set()) {
    for (const ObjectPattern& m : p.value.set()) CollectHeadOids(m, oids);
  }
}

void CollectEdges(const ObjectPattern& p,
                  std::multimap<Term, Term>* edges) {
  if (p.value.is_term()) return;
  for (const ObjectPattern& m : p.value.set()) {
    edges->emplace(p.oid, m.oid);
    CollectEdges(m, edges);
  }
}

}  // namespace

Status CheckHeadOids(const TslQuery& query) {
  if (!query.head.oid.is_func()) {
    return Status::IllFormedQuery(
        StrCat("head root oid ", query.head.oid.ToString(),
               " is not a function term; TSL answers are rooted at freshly "
               "minted objects"));
  }
  std::vector<Term> oids;
  CollectHeadOids(query.head, &oids);
  std::set<Term> seen;
  for (const Term& oid : oids) {
    if (oid.is_atom()) {
      return Status::IllFormedQuery(
          StrCat("head oid ", oid.ToString(),
                 " is an atomic constant; head oids must be function terms "
                 "(fresh objects) or oid variables (copied objects)"));
    }
    if (!seen.insert(oid).second) {
      return Status::IllFormedQuery(
          StrCat("head oid term ", oid.ToString(),
                 " is not unique within the head"));
    }
  }
  return Status::OK();
}

Status CheckAcyclicBody(const TslQuery& query) {
  std::multimap<Term, Term> edges;
  for (const Condition& c : query.body) CollectEdges(c.pattern, &edges);
  std::set<Term> nodes;
  for (const auto& [a, b] : edges) {
    nodes.insert(a);
    nodes.insert(b);
  }
  // Iterative DFS cycle detection over oid terms.
  std::map<Term, int> state;  // 0 unseen / 1 on stack / 2 done
  for (const Term& start : nodes) {
    if (state[start] != 0) continue;
    std::vector<std::pair<Term, bool>> stack{{start, false}};
    while (!stack.empty()) {
      auto [node, exiting] = stack.back();
      stack.pop_back();
      if (exiting) {
        state[node] = 2;
        continue;
      }
      if (state[node] == 1) continue;
      state[node] = 1;
      stack.emplace_back(node, true);
      auto [lo, hi] = edges.equal_range(node);
      for (auto it = lo; it != hi; ++it) {
        if (state[it->second] == 1) {
          return Status::IllFormedQuery(
              StrCat("cyclic object pattern through oid term ",
                     it->second.ToString()));
        }
        if (state[it->second] == 0) stack.emplace_back(it->second, false);
      }
    }
  }
  return Status::OK();
}

namespace {

bool PatternUsesRegexSteps(const ObjectPattern& p) {
  if (p.step != StepKind::kChild) return true;
  if (p.value.is_term()) return false;
  for (const ObjectPattern& m : p.value.set()) {
    if (PatternUsesRegexSteps(m)) return true;
  }
  return false;
}

}  // namespace

Status CheckRegexStepPlacement(const TslQuery& query) {
  if (PatternUsesRegexSteps(query.head)) {
    return Status::IllFormedQuery(
        "regular path steps (l+, **) cannot appear in a head; heads "
        "construct concrete answer graphs");
  }
  for (const Condition& c : query.body) {
    if (c.pattern.step != StepKind::kChild) {
      return Status::IllFormedQuery(
          "a condition's top-level pattern matches roots directly and "
          "cannot be a closure or descendant step");
    }
  }
  return Status::OK();
}

bool UsesRegexSteps(const TslQuery& query) {
  for (const Condition& c : query.body) {
    if (PatternUsesRegexSteps(c.pattern)) return true;
  }
  return false;
}

Status ValidateQuery(const TslQuery& query) {
  TSLRW_RETURN_NOT_OK(CheckSafety(query));
  TSLRW_RETURN_NOT_OK(CheckHeadOids(query));
  TSLRW_RETURN_NOT_OK(CheckAcyclicBody(query));
  TSLRW_RETURN_NOT_OK(CheckRegexStepPlacement(query));
  return Status::OK();
}

}  // namespace tslrw
