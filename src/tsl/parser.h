#ifndef TSLRW_TSL_PARSER_H_
#define TSLRW_TSL_PARSER_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "tsl/ast.h"

namespace tslrw {

/// \brief Parses one TSL rule in the paper's concrete syntax, e.g.
///
/// ```
/// <f(P) female {<f(X) Y Z>}> :-
///     <P person {<G gender female>}>@db AND <P person {<X Y Z>}>@db
/// ```
///
/// Conventions (matching the paper's examples):
///  - unquoted identifiers with an uppercase first letter are variables
///    (primes allowed: `X'`, `Y''`); everything else is an atomic constant
///    (lowercase identifiers, numbers, or quoted strings);
///  - `f(...)` is an uninterpreted function term;
///  - `{}` in a body matches any set object; `{p1 ... pn}` requires a
///    matching subobject for each member;
///  - each body condition may name its source with `@source`;
///  - `%` comments run to end of line.
///
/// Variable sorts (V_O vs V_C, \S2) are resolved from positions of use: a
/// variable standing alone in an oid field is an object-id variable; one in
/// a label or value field is a label/value variable. A name used in both
/// kinds of position is rejected (the sets are disjoint by definition).
///
/// \param text the rule text
/// \param name rule name (used as the view's source name); if empty, a
///        leading parenthesized name `(Q3) <...> :- ...` is honored.
Result<TslQuery> ParseTslQuery(std::string_view text,
                               std::string name = "");

/// \brief Parses a sequence of rules, each optionally prefixed by a
/// parenthesized name, exactly as listings appear in the paper.
Result<std::vector<TslQuery>> ParseTslProgram(std::string_view text);

/// \brief Re-derives variable sorts for a query assembled programmatically
/// (see ParseTslQuery for the position rules). Fails if some name is used
/// in both oid and label/value positions.
Result<TslQuery> ResolveVariableKinds(const TslQuery& query);

}  // namespace tslrw

#endif  // TSLRW_TSL_PARSER_H_
