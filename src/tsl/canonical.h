#ifndef TSLRW_TSL_CANONICAL_H_
#define TSLRW_TSL_CANONICAL_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "tsl/ast.h"

namespace tslrw {

/// \brief The canonical form of a TSL query, used as a plan-cache key by the
/// serving layer: two α-equivalent queries (same rule up to consistent
/// variable renaming and body-condition reordering) canonicalize to
/// byte-identical keys, so they share one cached rewriting-plan list.
///
/// Soundness: `query` is α-equivalent to the input by construction (it is
/// the input with conditions re-sorted and variables renamed), so equal keys
/// always denote α-equivalent queries — a collision can never serve the
/// wrong plans. Completeness is best-effort: for adversarially symmetric
/// bodies (condition canonicalization is graph-canonicalization-shaped) two
/// α-equivalent inputs may, in theory, keep distinct keys, which costs a
/// redundant plan computation and nothing else.
struct CanonicalForm {
  /// The renamed, re-sorted query. Name and source spans are cleared (they
  /// are presentation, not semantics); variables are `O0, O1, ...`
  /// (object-id sort) and `C0, C1, ...` (label/value sort) in first-occurrence
  /// order over head-then-body.
  TslQuery query;
  /// The byte key: `query.ToString()`. Equal keys <=> byte-identical
  /// canonical renderings.
  std::string key;
  /// Stable 64-bit fingerprint of `key` (FNV-1a): identical across runs,
  /// platforms, and processes, unlike std::hash. Used to pick a cache shard.
  uint64_t fingerprint = 0;
};

/// \brief Canonicalizes \p query: sorts body conditions by a
/// variable-name-blind shape, renames variables in first-occurrence order,
/// then refines (re-sort by full rendering, re-rename) to a fixpoint.
/// Deterministic for a given input; α-equivalent inputs converge to the same
/// key in all non-pathological cases (and Q1-style head/body renamings and
/// condition permutations always do).
CanonicalForm CanonicalizeQuery(const TslQuery& query);

/// \brief As above, but additionally reports the composed variable renaming
/// from the input query's variables to their canonical `O<i>`/`C<i>` names.
/// Lets callers translate per-variable annotations kept *outside* the query
/// (e.g. a capability's bound-variable set) into the canonical alphabet, so
/// those annotations become α-invariant too. Every variable of the input
/// appears as a key in \p renaming.
CanonicalForm CanonicalizeQuery(const TslQuery& query,
                                std::map<Term, Term>* renaming);

/// \brief FNV-1a 64-bit hash. Stable across processes by construction —
/// cache keys, shard choices, and recorded fingerprints must not depend on
/// the standard library's per-process hash seeding.
uint64_t StableFingerprint(std::string_view bytes);

}  // namespace tslrw

#endif  // TSLRW_TSL_CANONICAL_H_
