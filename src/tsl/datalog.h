#ifndef TSLRW_TSL_DATALOG_H_
#define TSLRW_TSL_DATALOG_H_

#include <string>

#include "common/result.h"
#include "tsl/ast.h"

namespace tslrw {

/// \brief Renders a TSL rule (or rule set) as the Datalog-with-function-
/// symbols program of the [28] reduction the paper cites in \S2/\S6: "TSL
/// can be translated to Datalog with function symbols and limited recursion
/// over a fixed schema."
///
/// The fixed schema has three EDB/IDB predicates per \S4's decomposition:
///
/// ```
/// top(O)            % O is a root of the (source or answer) graph
/// member(O1, O2)    % O2 is a subobject of O1
/// object(O, L, V)   % O has label L and atomic value V ('set' marks sets)
/// ```
///
/// Body conditions over a source `s` use predicates qualified `s.top` etc.;
/// the head contributes one rule per answer-graph component. A value
/// variable that may bind a whole subgraph shows up through the auxiliary
/// `copy(O)` predicate, whose (recursive) closure rules are emitted once —
/// the "limited form of recursion" of the reduction.
///
/// This is a *pretty-printer* for interoperability and inspection (e.g.
/// feeding a Datalog engine or a paper appendix); evaluation in this
/// library runs natively on OEM.
Result<std::string> ToDatalog(const TslQuery& query);
Result<std::string> ToDatalog(const TslRuleSet& rules);

}  // namespace tslrw

#endif  // TSLRW_TSL_DATALOG_H_
