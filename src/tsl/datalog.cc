#include "tsl/datalog.h"

#include <set>
#include <vector>

#include "common/string_util.h"
#include "tsl/normal_form.h"

namespace tslrw {

namespace {

/// Datalog spelling: variables verbatim (they are uppercase by
/// construction), atoms quoted, function terms recursively.
std::string RenderTerm(const Term& t) {
  switch (t.kind()) {
    case TermKind::kAtom:
      return StrCat("'", t.atom_name(), "'");
    case TermKind::kVariable:
      return t.var_name();
    case TermKind::kFunction:
      return StrCat(t.functor(), "(",
                    JoinMapped(t.args(), ",", RenderTerm), ")");
  }
  return "";
}

std::string Pred(const std::string& source, const char* name) {
  return source.empty() ? std::string(name) : StrCat(source, ".", name);
}

/// Renders one normal-form body path as top/member/object atoms.
void RenderPath(const Path& path, std::vector<std::string>* atoms) {
  atoms->push_back(StrCat(Pred(path.source, "top"), "(",
                          RenderTerm(path.steps[0].oid), ")"));
  for (size_t i = 0; i < path.steps.size(); ++i) {
    std::string value;
    if (i + 1 < path.steps.size()) {
      value = "'set'";
      atoms->push_back(StrCat(Pred(path.source, "member"), "(",
                              RenderTerm(path.steps[i].oid), ",",
                              RenderTerm(path.steps[i + 1].oid), ")"));
    } else if (path.tail.is_set()) {
      value = "'set'";
    } else {
      value = RenderTerm(path.tail.term());
    }
    atoms->push_back(StrCat(Pred(path.source, "object"), "(",
                            RenderTerm(path.steps[i].oid), ",",
                            RenderTerm(path.steps[i].label), ",", value,
                            ")"));
  }
}

std::string Rule(const std::string& head,
                 const std::vector<std::string>& body) {
  if (body.empty()) return StrCat(head, ".\n");
  return StrCat(head, " :- ", Join(body, ", "), ".\n");
}

/// The body path whose tail is exactly the variable \p v, if any: its last
/// step names the object whose (possibly set) value v denotes.
const Path* PathWithTailVar(const std::vector<Path>& paths, const Term& v) {
  for (const Path& p : paths) {
    if (p.tail.is_term() && p.tail.term() == v) return &p;
  }
  return nullptr;
}

void RenderHeadPattern(const ObjectPattern& pattern,
                       const std::vector<Path>& body_paths,
                       const std::vector<std::string>& body_atoms,
                       std::set<std::string>* copy_sources,
                       std::string* out) {
  std::string oid = RenderTerm(pattern.oid);
  if (pattern.value.is_set()) {
    (*out) += Rule(StrCat("ans.object(", oid, ",",
                          RenderTerm(pattern.label), ",'set')"),
                   body_atoms);
    for (const ObjectPattern& member : pattern.value.set()) {
      (*out) += Rule(StrCat("ans.member(", oid, ",",
                            RenderTerm(member.oid), ")"),
                     body_atoms);
      RenderHeadPattern(member, body_paths, body_atoms, copy_sources, out);
    }
    return;
  }
  const Term& v = pattern.value.term();
  (*out) += Rule(StrCat("ans.object(", oid, ",", RenderTerm(pattern.label),
                        ",", RenderTerm(v), ")"),
                 body_atoms);
  // A value variable may carry a whole subgraph: seed the copy closure
  // from the children of the body object whose value it is.
  if (v.is_var()) {
    if (const Path* owner = PathWithTailVar(body_paths, v)) {
      std::string owner_oid = RenderTerm(owner->steps.back().oid);
      std::vector<std::string> body = body_atoms;
      body.push_back(StrCat(Pred(owner->source, "member"), "(", owner_oid,
                            ",C)"));
      (*out) += Rule(StrCat("ans.member(", oid, ",C)"), body);
      (*out) += Rule(StrCat("copy_", owner->source, "(C)"), body);
      copy_sources->insert(owner->source);
    }
  }
}

}  // namespace

Result<std::string> ToDatalog(const TslQuery& query) {
  TslQuery nf = ToNormalForm(query);
  TSLRW_ASSIGN_OR_RETURN(std::vector<Path> paths, BodyPaths(nf));

  std::vector<std::string> body_atoms;
  for (const Path& p : paths) RenderPath(p, &body_atoms);
  // Deduplicate while preserving order.
  std::set<std::string> seen;
  std::vector<std::string> unique_atoms;
  for (std::string& atom : body_atoms) {
    if (seen.insert(atom).second) unique_atoms.push_back(std::move(atom));
  }

  std::string out;
  if (!nf.name.empty()) out += StrCat("% rule ", nf.name, "\n");
  out += Rule(StrCat("ans.top(", RenderTerm(nf.head.oid), ")"),
              unique_atoms);
  std::set<std::string> copy_sources;
  RenderHeadPattern(nf.head, paths, unique_atoms, &copy_sources, &out);
  // The "limited recursion" of the [28] reduction: subgraph copies.
  for (const std::string& source : copy_sources) {
    std::string copy = StrCat("copy_", source);
    out += StrCat("% subgraph-copy closure over ", source, "\n");
    out += Rule(StrCat("ans.member(O,C)"),
                {StrCat(copy, "(O)"),
                 StrCat(Pred(source, "member"), "(O,C)")});
    out += Rule(StrCat("ans.object(O,L,V)"),
                {StrCat(copy, "(O)"),
                 StrCat(Pred(source, "object"), "(O,L,V)")});
    out += Rule(StrCat(copy, "(C)"),
                {StrCat(copy, "(O)"),
                 StrCat(Pred(source, "member"), "(O,C)")});
  }
  return out;
}

Result<std::string> ToDatalog(const TslRuleSet& rules) {
  std::string out;
  for (const TslQuery& rule : rules.rules) {
    TSLRW_ASSIGN_OR_RETURN(std::string part, ToDatalog(rule));
    out += part;
  }
  return out;
}

}  // namespace tslrw
