#include "tsl/ast.h"

#include "common/string_util.h"

namespace tslrw {

PatternValue PatternValue::FromTerm(Term t) {
  PatternValue v;
  v.term_ = std::move(t);
  return v;
}

PatternValue PatternValue::FromSet(SetPattern members) {
  PatternValue v;
  v.members_ = std::move(members);
  return v;
}

std::string PatternValue::ToString() const {
  if (is_term()) return term_->ToString();
  return tslrw::ToString(members_);
}

bool operator==(const PatternValue& a, const PatternValue& b) {
  return a.term_ == b.term_ && a.members_ == b.members_;
}

bool operator<(const PatternValue& a, const PatternValue& b) {
  if (a.is_term() != b.is_term()) return a.is_term() < b.is_term();
  if (a.is_term()) return a.term() < b.term();
  return a.members_ < b.members_;
}

std::string ObjectPattern::ToString() const {
  std::string label_text;
  switch (step) {
    case StepKind::kChild:
      label_text = label.ToString();
      break;
    case StepKind::kClosure:
      label_text = StrCat(label.ToString(), "+");
      break;
    case StepKind::kDescendant:
      label_text = "**";
      break;
  }
  return StrCat("<", oid.ToString(), " ", label_text, " ", value.ToString(),
                ">");
}

void ObjectPattern::CollectVariables(std::set<Term>* out) const {
  oid.CollectVariables(out);
  label.CollectVariables(out);
  if (value.is_term()) {
    value.term().CollectVariables(out);
  } else {
    for (const ObjectPattern& m : value.set()) m.CollectVariables(out);
  }
}

bool operator==(const ObjectPattern& a, const ObjectPattern& b) {
  return a.step == b.step && a.oid == b.oid && a.label == b.label &&
         a.value == b.value;
}

bool operator<(const ObjectPattern& a, const ObjectPattern& b) {
  if (a.step != b.step) return a.step < b.step;
  if (a.oid != b.oid) return a.oid < b.oid;
  if (a.label != b.label) return a.label < b.label;
  return a.value < b.value;
}

std::string Condition::ToString() const {
  std::string out = pattern.ToString();
  if (!source.empty()) out += StrCat("@", source);
  return out;
}

std::string TslQuery::ToString() const {
  return StrCat(head.ToString(), " :- ",
                JoinMapped(body, " AND ",
                           [](const Condition& c) { return c.ToString(); }));
}

std::set<Term> TslQuery::HeadVariables() const {
  std::set<Term> vars;
  head.CollectVariables(&vars);
  return vars;
}

std::set<Term> TslQuery::BodyVariables() const {
  std::set<Term> vars;
  for (const Condition& c : body) c.pattern.CollectVariables(&vars);
  return vars;
}

std::set<std::string> TslQuery::Sources() const {
  std::set<std::string> out;
  for (const Condition& c : body) out.insert(c.source);
  return out;
}

std::string TslRuleSet::ToString() const {
  return JoinMapped(rules, "\n",
                    [](const TslQuery& q) { return q.ToString(); });
}

std::string ToString(const SetPattern& set) {
  return StrCat("{", JoinMapped(set, " ",
                                [](const ObjectPattern& p) {
                                  return p.ToString();
                                }),
                "}");
}

ObjectPattern ApplyTermSubstitution(const TermSubstitution& subst,
                                    const ObjectPattern& pattern) {
  ObjectPattern out;
  out.oid = subst.Apply(pattern.oid);
  out.label = subst.Apply(pattern.label);
  out.step = pattern.step;
  out.span = pattern.span;
  if (pattern.value.is_term()) {
    out.value = PatternValue::FromTerm(subst.Apply(pattern.value.term()));
  } else {
    SetPattern members;
    members.reserve(pattern.value.set().size());
    for (const ObjectPattern& m : pattern.value.set()) {
      members.push_back(ApplyTermSubstitution(subst, m));
    }
    out.value = PatternValue::FromSet(std::move(members));
  }
  return out;
}

TslQuery ApplyTermSubstitution(const TermSubstitution& subst,
                               const TslQuery& query) {
  TslQuery out;
  out.name = query.name;
  out.span = query.span;
  out.head = ApplyTermSubstitution(subst, query.head);
  out.body.reserve(query.body.size());
  for (const Condition& c : query.body) {
    out.body.push_back(
        Condition{ApplyTermSubstitution(subst, c.pattern), c.source});
  }
  return out;
}

TslQuery RenameVariablesApart(const TslQuery& query,
                              const std::string& suffix) {
  TermSubstitution renaming;
  std::set<Term> vars = query.HeadVariables();
  for (const Term& v : query.BodyVariables()) vars.insert(v);
  for (const Term& v : vars) {
    renaming.Bind(v, Term::MakeVar(v.var_name() + suffix, v.var_kind()));
  }
  return ApplyTermSubstitution(renaming, query);
}

TslQuery WithDefaultSource(TslQuery query, const std::string& source) {
  for (Condition& c : query.body) {
    if (c.source.empty()) c.source = source;
  }
  return query;
}

}  // namespace tslrw
