#ifndef TSLRW_TSL_NORMAL_FORM_H_
#define TSLRW_TSL_NORMAL_FORM_H_

#include <vector>

#include "common/result.h"
#include "tsl/ast.h"

namespace tslrw {

/// \brief True iff every set-valued value field in the body holds at most
/// one object pattern (\S2, "Normal Form TSL Queries").
bool IsNormalForm(const TslQuery& query);

/// \brief Converts a TSL query into normal form by splitting each body
/// condition into one condition per root-to-leaf path, e.g. (Q1) -> (Q2):
///
/// ```
/// <P person {<G gender female> <X Y Z>}>@db
///   ==>  <P person {<G gender female>}>@db AND <P person {<X Y Z>}>@db
/// ```
///
/// The head is left untouched (normal form constrains bodies only). The
/// conversion preserves semantics because a set pattern requires an
/// independent witness per member (\S2). Duplicate conditions are dropped.
TslQuery ToNormalForm(const TslQuery& query);

/// \brief Move overload: when the input is already in normal form (the
/// common case inside the chase and composition loops), reuses its parts
/// instead of rebuilding every path. Output is byte-identical to the
/// copying overload.
TslQuery ToNormalForm(TslQuery&& query);

/// \brief A normal-form body condition viewed as a path: a chain of
/// (oid, label) steps ending in a term or in the empty set pattern `{}`.
struct Path {
  struct Step {
    Term oid;
    Term label;
    /// Edge semantics from the previous step (kChild for plain TSL;
    /// kClosure/kDescendant for the \S7 regular-path extension). The first
    /// step of a condition is always kChild.
    StepKind kind = StepKind::kChild;
  };
  std::vector<Step> steps;
  /// Terminal value: a term, or the empty-set marker (is_set() with no
  /// members) when the path ends in `{}`.
  PatternValue tail;
  /// Source of the originating condition.
  std::string source;

  size_t depth() const { return steps.size(); }
  std::string ToString() const;
};

/// \brief Flattens a normal-form condition into a Path. Fails with
/// InvalidArgument if some set field has more than one member.
Result<Path> FlattenPath(const Condition& condition);

/// \brief Rebuilds the condition from a path (inverse of FlattenPath).
Condition UnflattenPath(const Path& path);

/// \brief Flattens every condition of a normal-form body into paths.
Result<std::vector<Path>> BodyPaths(const TslQuery& query);

}  // namespace tslrw

#endif  // TSLRW_TSL_NORMAL_FORM_H_
