#include "repl/repl.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "constraints/dataguide.h"
#include "constraints/dtd.h"
#include "equiv/equivalence.h"
#include "eval/evaluator.h"
#include "oem/parser.h"
#include "rewrite/candidate.h"
#include "rewrite/compose.h"
#include "rewrite/contained.h"
#include "rewrite/minimize.h"
#include "rewrite/rewriter.h"
#include "tsl/parser.h"
#include "tsl/validate.h"

namespace tslrw {

namespace {

constexpr std::string_view kHelp =
    "commands:\n"
    "  source database <name> { ... }   define an OEM source\n"
    "  dtd <!ELEMENT ...> ...           set structural constraints\n"
    "  dataguide <source>               infer constraints from an instance\n"
    "  view (Name) <head> :- <body>     define a view\n"
    "  query (Name) <head> :- <body>    define a query\n"
    "  eval <query>                     evaluate against the sources\n"
    "  rewrite <query> [total]          find equivalent rewritings\n"
    "  contained <query> [total]        maximally contained rewriting\n"
    "  explain <query>                  trace the rewriting pipeline\n"
    "  minimize <query>                 remove redundant conditions\n"
    "  equivalent <q1> <q2>             compile-time equivalence test\n"
    "  analyze [rule]                   static diagnostics (all rules, or "
    "one)\n"
    "  materialize <view>               view result becomes a source\n"
    "  show sources|views|queries|constraints\n"
    "  load <path>                      run a script file\n"
    "  write <source> <path>            save a source's OEM text\n"
    "  help | quit\n";

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Splits the first whitespace-delimited word off \p s.
std::string_view TakeWord(std::string_view* s) {
  *s = Trim(*s);
  size_t end = 0;
  while (end < s->size() &&
         !std::isspace(static_cast<unsigned char>((*s)[end]))) {
    ++end;
  }
  std::string_view word = s->substr(0, end);
  s->remove_prefix(end);
  *s = Trim(*s);
  return word;
}

std::string RenderError(const Status& status) {
  return StrCat("error: ", status.ToString(), "\n");
}

}  // namespace

std::string ReplSession::Execute(std::string_view line) {
  std::string_view rest = Trim(line);
  if (rest.empty() || rest.front() == '%') return "";
  std::string_view command = TakeWord(&rest);
  if (command == "help") return std::string(kHelp);
  if (command == "quit" || command == "exit") {
    done_ = true;
    return "";
  }
  if (command == "source") return Source(rest);
  if (command == "dtd") return DefineDtd(rest);
  if (command == "dataguide") return InferConstraints(rest);
  if (command == "view") return DefineView(rest);
  if (command == "query") return DefineQuery(rest);
  if (command == "eval") return Eval(rest);
  if (command == "rewrite") return Rewrite(rest, /*contained=*/false);
  if (command == "contained") return Rewrite(rest, /*contained=*/true);
  if (command == "explain") return Explain(rest);
  if (command == "minimize") return Minimize(rest);
  if (command == "equivalent") return Equivalent(rest);
  if (command == "analyze" || command == ":analyze") return Analyze(rest);
  if (command == "materialize") return Materialize(rest);
  if (command == "show") return Show(rest);
  if (command == "load") return Load(rest);
  if (command == "write") return WriteSource(rest);
  return StrCat("unknown command '", command, "' (try `help`)\n");
}

std::string ReplSession::ExecuteScript(std::string_view script) {
  std::string out;
  std::string statement;
  size_t pos = 0;
  while (pos <= script.size() && !done_) {
    size_t eol = script.find('\n', pos);
    std::string_view line = script.substr(
        pos, eol == std::string_view::npos ? script.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? script.size() + 1 : eol + 1;
    std::string_view trimmed = Trim(line);
    if (!trimmed.empty() && trimmed.back() == '\\') {
      statement += std::string(trimmed.substr(0, trimmed.size() - 1));
      statement += ' ';
      continue;
    }
    statement += std::string(line);
    out += Execute(statement);
    statement.clear();
  }
  if (!Trim(statement).empty()) out += Execute(statement);
  return out;
}

std::string ReplSession::Source(std::string_view rest) {
  auto db = ParseOemDatabase(rest);
  if (!db.ok()) return RenderError(db.status());
  std::string name = db->name();
  catalog_.Put(std::move(db).value());
  return StrCat("source ", name, " defined (",
                catalog_.Find(name).value()->ReachableOids().size(),
                " reachable objects)\n");
}

std::string ReplSession::DefineDtd(std::string_view rest) {
  auto dtd = Dtd::Parse(rest);
  if (!dtd.ok()) return RenderError(dtd.status());
  size_t elements = dtd->elements().size();
  constraints_ = StructuralConstraints(std::move(dtd).value());
  return StrCat("constraints set (", elements, " element declarations)\n");
}

std::string ReplSession::InferConstraints(std::string_view rest) {
  std::string_view name = TakeWord(&rest);
  auto db = catalog_.Find(name);
  if (!db.ok()) return RenderError(db.status());
  auto dtd = InferDtdFromData(**db);
  if (!dtd.ok()) return RenderError(dtd.status());
  std::string rendered = dtd->ToString();
  constraints_ = StructuralConstraints(std::move(dtd).value());
  return StrCat("constraints inferred from ", name, ":\n", rendered);
}

std::string ReplSession::DefineView(std::string_view rest) {
  auto view = ParseTslQuery(rest);
  if (!view.ok()) return RenderError(view.status());
  if (view->name.empty()) {
    return "error: views need a (Name) prefix\n";
  }
  if (Status st = ValidateQuery(*view); !st.ok()) return RenderError(st);
  std::string name = view->name;
  views_.insert_or_assign(name, std::move(view).value());
  rule_texts_.insert_or_assign(name, std::string(rest));
  return StrCat("view ", name, " defined\n");
}

std::string ReplSession::DefineQuery(std::string_view rest) {
  auto query = ParseTslQuery(rest);
  if (!query.ok()) return RenderError(query.status());
  if (query->name.empty()) {
    return "error: queries need a (Name) prefix\n";
  }
  if (Status st = ValidateQuery(*query); !st.ok()) return RenderError(st);
  std::string name = query->name;
  queries_.insert_or_assign(name, std::move(query).value());
  rule_texts_.insert_or_assign(name, std::string(rest));
  return StrCat("query ", name, " defined\n");
}

Result<TslQuery> ReplSession::LookupQuery(std::string_view name) const {
  auto it = queries_.find(name);
  if (it != queries_.end()) return it->second;
  auto vit = views_.find(name);
  if (vit != views_.end()) return vit->second;
  return Status::NotFound(StrCat("no query or view named ", name));
}

std::vector<TslQuery> ReplSession::Views() const {
  std::vector<TslQuery> views;
  for (const auto& [name, view] : views_) views.push_back(view);
  return views;
}

ChaseOptions ReplSession::MakeChaseOptions() const {
  ChaseOptions options;
  options.constraints = constraints_ptr();
  for (const auto& [name, view] : views_) {
    options.constraint_exempt_sources.insert(name);
  }
  return options;
}

std::string ReplSession::Eval(std::string_view rest) {
  std::string_view name = TakeWord(&rest);
  auto query = LookupQuery(name);
  if (!query.ok()) return RenderError(query.status());
  auto answer = Evaluate(*query, catalog_);
  if (!answer.ok()) return RenderError(answer.status());
  return answer->ToString();
}

std::string ReplSession::Rewrite(std::string_view rest, bool contained) {
  std::string_view name = TakeWord(&rest);
  bool total = TakeWord(&rest) == "total";
  auto query = LookupQuery(name);
  if (!query.ok()) return RenderError(query.status());
  RewriteOptions options;
  options.constraints = constraints_ptr();
  options.require_total = total;
  if (contained) {
    auto result = FindMaximallyContainedRewriting(*query, Views(), options);
    if (!result.ok()) return RenderError(result.status());
    std::string out =
        StrCat(result->rewriting.rules.size(), " contained rule(s)",
               result->equivalent ? " (union is equivalent)" : "", "\n");
    for (const TslQuery& rule : result->rewriting.rules) {
      out += StrCat("  ", rule.ToString(), "\n");
    }
    return out;
  }
  auto result = RewriteQuery(*query, Views(), options);
  if (!result.ok()) return RenderError(result.status());
  std::string out = StrCat(result->rewritings.size(), " rewriting(s); ",
                           result->mappings_found, " mapping(s), ",
                           result->candidates_tested, " candidate(s) tested\n");
  for (const TslQuery& rw : result->rewritings) {
    out += StrCat("  ", rw.ToString(), "\n");
  }
  return out;
}

std::string ReplSession::Explain(std::string_view rest) {
  std::string_view name = TakeWord(&rest);
  auto query = LookupQuery(name);
  if (!query.ok()) return RenderError(query.status());
  ChaseOptions chase_options = MakeChaseOptions();
  auto chased = ChaseQuery(*query, chase_options);
  if (!chased.ok()) {
    if (chased.status().IsUnsatisfiable()) {
      return StrCat("query is unsatisfiable under the dependencies: ",
                    chased.status().message(), "\n");
    }
    return RenderError(chased.status());
  }
  std::string out = StrCat("chased query:\n  ", chased->ToString(), "\n");

  std::vector<TslQuery> chased_views;
  for (const auto& [vname, view] : views_) {
    auto cv = ChaseQuery(view, chase_options);
    if (cv.ok()) chased_views.push_back(std::move(cv).value());
  }
  size_t mappings = 0;
  auto atoms =
      BuildCandidateAtoms(*chased, chased_views, &mappings);
  if (!atoms.ok()) return RenderError(atoms.status());
  out += StrCat("step 1A: ", mappings, " mapping(s) -> ",
                std::count_if(atoms->begin(), atoms->end(),
                              [](const CandidateAtom& a) { return a.is_view; }),
                " view instantiation(s):\n");
  for (const CandidateAtom& atom : *atoms) {
    if (!atom.is_view) continue;
    out += StrCat("  ", atom.condition.ToString(), "  covers {",
                  JoinMapped(atom.covers, ",",
                             [](size_t i) { return StrCat(i); }),
                  "}\n");
  }
  RewriteOptions options;
  options.constraints = constraints_ptr();
  auto result = RewriteQuery(*query, Views(), options);
  if (!result.ok()) return RenderError(result.status());
  out += StrCat("steps 1B-2: ", result->candidates_generated,
                " candidate(s) generated, ", result->candidates_tested,
                " composed+tested, ", result->rewritings.size(),
                " equivalent:\n");
  for (const TslQuery& rw : result->rewritings) {
    auto composed = ComposeWithViews(rw, Views());
    out += StrCat("  ", rw.ToString(), "\n");
    if (composed.ok()) {
      for (const TslQuery& rule : composed->rules) {
        out += StrCat("    expands to: ", rule.ToString(), "\n");
      }
    }
  }
  return out;
}

std::string ReplSession::Minimize(std::string_view rest) {
  std::string_view name = TakeWord(&rest);
  auto query = LookupQuery(name);
  if (!query.ok()) return RenderError(query.status());
  auto minimized = MinimizeQuery(*query, MakeChaseOptions());
  if (!minimized.ok()) return RenderError(minimized.status());
  return StrCat(minimized->ToString(), "\n");
}

std::string ReplSession::Equivalent(std::string_view rest) {
  std::string_view a = TakeWord(&rest);
  std::string_view b = TakeWord(&rest);
  auto qa = LookupQuery(a);
  if (!qa.ok()) return RenderError(qa.status());
  auto qb = LookupQuery(b);
  if (!qb.ok()) return RenderError(qb.status());
  auto eq = AreEquivalent(*qa, *qb, MakeChaseOptions());
  if (!eq.ok()) return RenderError(eq.status());
  return *eq ? "equivalent\n" : "not equivalent\n";
}

Analyzer ReplSession::MakeAnalyzer() const {
  AnalyzerOptions options;
  options.constraints = constraints_ptr();
  for (const auto& [name, view] : views_) {
    options.constraint_exempt_sources.insert(name);
  }
  return Analyzer(options);
}

std::string ReplSession::RenderReport(const AnalysisReport& report) const {
  if (report.diagnostics.empty()) return "no diagnostics\n";
  std::string out;
  for (const Diagnostic& d : report.diagnostics) {
    auto it = rule_texts_.find(d.rule);
    out += RenderDiagnostic(
        d, it != rule_texts_.end() ? std::string_view(it->second)
                                   : std::string_view());
  }
  out += StrCat(report.count(Severity::kError), " error(s), ",
                report.count(Severity::kWarning), " warning(s), ",
                report.count(Severity::kNote), " note(s)\n");
  return out;
}

std::string ReplSession::Analyze(std::string_view rest) {
  std::string_view name = TakeWord(&rest);
  Analyzer analyzer = MakeAnalyzer();
  if (!name.empty()) {
    auto query = LookupQuery(name);
    if (!query.ok()) return RenderError(query.status());
    return RenderReport(analyzer.AnalyzeQuery(*query));
  }
  // All rules at once: the views go through AnalyzeRules so the cross-rule
  // dead-view pass sees them together; queries are analyzed one by one.
  AnalysisReport report = analyzer.AnalyzeRules(Views());
  for (const auto& [qname, query] : queries_) {
    AnalysisReport qr = analyzer.AnalyzeQuery(query);
    report.diagnostics.insert(report.diagnostics.end(),
                              qr.diagnostics.begin(), qr.diagnostics.end());
  }
  return RenderReport(report);
}

std::string ReplSession::Materialize(std::string_view rest) {
  std::string_view name = TakeWord(&rest);
  auto it = views_.find(name);
  if (it == views_.end()) {
    return StrCat("error: no view named ", name, "\n");
  }
  auto result = MaterializeView(it->second, catalog_);
  if (!result.ok()) return RenderError(result.status());
  size_t objects = result->ReachableOids().size();
  catalog_.Put(std::move(result).value());
  return StrCat("view ", name, " materialized as a source (", objects,
                " objects)\n");
}

std::string ReplSession::Show(std::string_view rest) {
  std::string_view what = TakeWord(&rest);
  if (what == "sources") {
    std::string out;
    for (const auto& [name, db] : catalog_.sources()) {
      out += StrCat(name, ": ", db.ReachableOids().size(),
                    " reachable objects, ", db.roots().size(), " roots\n");
    }
    return out.empty() ? "no sources\n" : out;
  }
  if (what == "views") {
    std::string out;
    for (const auto& [name, view] : views_) {
      out += StrCat("(", name, ") ", view.ToString(), "\n");
    }
    return out.empty() ? "no views\n" : out;
  }
  if (what == "queries") {
    std::string out;
    for (const auto& [name, query] : queries_) {
      out += StrCat("(", name, ") ", query.ToString(), "\n");
    }
    return out.empty() ? "no queries\n" : out;
  }
  if (what == "constraints") {
    if (!constraints_.has_value()) return "no constraints\n";
    return constraints_->dtd().ToString();
  }
  return "usage: show sources|views|queries|constraints\n";
}

std::string ReplSession::Load(std::string_view rest) {
  std::string path(TakeWord(&rest));
  std::ifstream in(path);
  if (!in) return StrCat("error: cannot open ", path, "\n");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ExecuteScript(buffer.str());
}

std::string ReplSession::WriteSource(std::string_view rest) {
  std::string_view name = TakeWord(&rest);
  std::string path(TakeWord(&rest));
  auto db = catalog_.Find(name);
  if (!db.ok()) return RenderError(db.status());
  if (path.empty()) return "usage: write <source> <path>\n";
  std::ofstream out(path);
  if (!out) return StrCat("error: cannot open ", path, " for writing\n");
  out << (*db)->ToString();
  return StrCat("wrote ", name, " to ", path, "\n");
}

}  // namespace tslrw
