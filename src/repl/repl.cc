#include "repl/repl.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "catalog/compiler.h"
#include "catalog/index_file.h"
#include "common/string_util.h"
#include "constraints/dataguide.h"
#include "constraints/dtd.h"
#include "equiv/equivalence.h"
#include "eval/evaluator.h"
#include "ir/compiler.h"
#include "ir/ir.h"
#include "oem/parser.h"
#include "rewrite/candidate.h"
#include "rewrite/compose.h"
#include "rewrite/contained.h"
#include "rewrite/minimize.h"
#include "rewrite/rewriter.h"
#include "testing/chaos.h"
#include "tsl/parser.h"
#include "tsl/validate.h"

namespace tslrw {

namespace {

constexpr std::string_view kHelp =
    "commands:\n"
    "  source database <name> { ... }   define an OEM source\n"
    "  dtd <!ELEMENT ...> ...           set structural constraints\n"
    "  dataguide <source>               infer constraints from an instance\n"
    "  view (Name) <head> :- <body>     define a view\n"
    "  query (Name) <head> :- <body>    define a query\n"
    "  eval <query>                     evaluate against the sources\n"
    "  rewrite <query> [total]          find equivalent rewritings\n"
    "  contained <query> [total]        maximally contained rewriting\n"
    "  explain <query>                  trace the rewriting pipeline\n"
    "  minimize <query>                 remove redundant conditions\n"
    "  equivalent <q1> <q2>             compile-time equivalence test\n"
    "  analyze [rule]                   static diagnostics (all rules, or "
    "one)\n"
    "  compile [save <p> | load <p>]    whole-catalog analysis (TSL2xx) +\n"
    "                                   structural view index; attaches to\n"
    "                                   a running server\n"
    "  materialize <view>               view result becomes a source\n"
    "  capability <source> (Name) <head> :- <body>\n"
    "                                   declare a source interface view\n"
    "  fault <source> unavailable|flaky <p>|slow <ticks>|truncated <n>|none\n"
    "                                   script a wrapper fault for mediate\n"
    "  plan <query> [ir]                rewriting plan set (over the\n"
    "                                   capabilities when declared, else\n"
    "                                   the views); `ir` also dumps the\n"
    "                                   compiled flat IR with per-pass\n"
    "                                   before/after op counts\n"
    "  mediate <query> [seed <n>]       fault-tolerant plan + execute,\n"
    "                                   with the execution report\n"
    "  serve start [threads <n>] [queue <n>] [cache <n>]\n"
    "                                   start the concurrent serving layer\n"
    "  serve <query> [seed <n>]         answer through the server and its\n"
    "                                   rewriting-plan cache\n"
    "  serve stop                       stop the server\n"
    "  cluster start [shards <n>] [threads <n>] [queue <n>] [cache <n>]\n"
    "                                   start the sharded cluster front-end\n"
    "  cluster <query> [seed <n>]       route by canonical fingerprint to a\n"
    "                                   shard and answer there\n"
    "  cluster stats                    router counters and per-shard stats\n"
    "  cluster stop                     stop every shard\n"
    "  chaos [seed <n>] [requests <n>]  deterministic multi-phase fault\n"
    "                                   drill over the declared\n"
    "                                   capabilities and queries\n"
    "  stats                            serving-layer counters and session\n"
    "                                   metrics\n"
    "  trace on|off                     record span trees for rewrite,\n"
    "                                   mediate, and serve commands\n"
    "  trace dump [json]                last trace as text, or as Chrome\n"
    "                                   trace_event JSON (chrome://tracing)\n"
    "  show sources|views|queries|constraints|capabilities|faults\n"
    "  load <path>                      run a script file\n"
    "  write <source> <path>            save a source's OEM text\n"
    "  help | quit\n";

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Splits the first whitespace-delimited word off \p s.
std::string_view TakeWord(std::string_view* s) {
  *s = Trim(*s);
  size_t end = 0;
  while (end < s->size() &&
         !std::isspace(static_cast<unsigned char>((*s)[end]))) {
    ++end;
  }
  std::string_view word = s->substr(0, end);
  s->remove_prefix(end);
  *s = Trim(*s);
  return word;
}

std::string RenderError(const Status& status) {
  return StrCat("error: ", status.ToString(), "\n");
}

}  // namespace

std::string ReplSession::Execute(std::string_view line) {
  std::string_view rest = Trim(line);
  if (rest.empty() || rest.front() == '%') return "";
  std::string_view command = TakeWord(&rest);
  if (command == "help") return std::string(kHelp);
  if (command == "quit" || command == "exit") {
    done_ = true;
    return "";
  }
  if (command == "source") return Source(rest);
  if (command == "dtd") return DefineDtd(rest);
  if (command == "dataguide") return InferConstraints(rest);
  if (command == "view") return DefineView(rest);
  if (command == "query") return DefineQuery(rest);
  if (command == "eval") return Eval(rest);
  if (command == "rewrite") return Rewrite(rest, /*contained=*/false);
  if (command == "contained") return Rewrite(rest, /*contained=*/true);
  if (command == "explain") return Explain(rest);
  if (command == "minimize") return Minimize(rest);
  if (command == "equivalent") return Equivalent(rest);
  if (command == "analyze" || command == ":analyze") return Analyze(rest);
  if (command == "compile" || command == ":compile") return Compile(rest);
  if (command == "materialize") return Materialize(rest);
  if (command == "capability") return DefineCapability(rest);
  if (command == "fault") return SetFault(rest);
  if (command == "plan") return PlanCmd(rest);
  if (command == "mediate") return Mediate(rest);
  if (command == "serve") return Serve(rest);
  if (command == "cluster") return Cluster(rest);
  if (command == "stats") return Stats(rest);
  if (command == "chaos") return Chaos(rest);
  if (command == "trace") return TraceCmd(rest);
  if (command == "show") return Show(rest);
  if (command == "load") return Load(rest);
  if (command == "write") return WriteSource(rest);
  return StrCat("unknown command '", command, "' (try `help`)\n");
}

std::string ReplSession::ExecuteScript(std::string_view script) {
  std::string out;
  std::string statement;
  size_t pos = 0;
  while (pos <= script.size() && !done_) {
    size_t eol = script.find('\n', pos);
    std::string_view line = script.substr(
        pos, eol == std::string_view::npos ? script.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? script.size() + 1 : eol + 1;
    std::string_view trimmed = Trim(line);
    if (!trimmed.empty() && trimmed.back() == '\\') {
      statement += std::string(trimmed.substr(0, trimmed.size() - 1));
      statement += ' ';
      continue;
    }
    statement += std::string(line);
    out += Execute(statement);
    statement.clear();
  }
  if (!Trim(statement).empty()) out += Execute(statement);
  return out;
}

std::string ReplSession::Source(std::string_view rest) {
  auto db = ParseOemDatabase(rest);
  if (!db.ok()) return RenderError(db.status());
  std::string name = db->name();
  catalog_.Put(std::move(db).value());
  // A running server never sees catalog_ directly: the mutation reaches it
  // as a snapshot swap, so in-flight servings keep their old catalog. A
  // running cluster replicates the same swap to every shard.
  if (server_ != nullptr) {
    server_->UpdateCatalog(*catalog_.Find(name).value());
  }
  if (cluster_ != nullptr) {
    cluster_->UpdateCatalog(*catalog_.Find(name).value());
  }
  bool published = server_ != nullptr || cluster_ != nullptr;
  return StrCat("source ", name, " defined (",
                catalog_.Find(name).value()->ReachableOids().size(),
                " reachable objects)", published ? ", published" : "", "\n");
}

std::string ReplSession::DefineDtd(std::string_view rest) {
  auto dtd = Dtd::Parse(rest);
  if (!dtd.ok()) return RenderError(dtd.status());
  size_t elements = dtd->elements().size();
  constraints_ = StructuralConstraints(std::move(dtd).value());
  return StrCat("constraints set (", elements, " element declarations)\n");
}

std::string ReplSession::InferConstraints(std::string_view rest) {
  std::string_view name = TakeWord(&rest);
  auto db = catalog_.Find(name);
  if (!db.ok()) return RenderError(db.status());
  auto dtd = InferDtdFromData(**db);
  if (!dtd.ok()) return RenderError(dtd.status());
  std::string rendered = dtd->ToString();
  constraints_ = StructuralConstraints(std::move(dtd).value());
  return StrCat("constraints inferred from ", name, ":\n", rendered);
}

std::string ReplSession::DefineView(std::string_view rest) {
  auto view = ParseTslQuery(rest);
  if (!view.ok()) return RenderError(view.status());
  if (view->name.empty()) {
    return "error: views need a (Name) prefix\n";
  }
  if (Status st = ValidateQuery(*view); !st.ok()) return RenderError(st);
  std::string name = view->name;
  views_.insert_or_assign(name, std::move(view).value());
  rule_texts_.insert_or_assign(name, std::string(rest));
  return StrCat("view ", name, " defined\n");
}

std::string ReplSession::DefineQuery(std::string_view rest) {
  auto query = ParseTslQuery(rest);
  if (!query.ok()) return RenderError(query.status());
  if (query->name.empty()) {
    return "error: queries need a (Name) prefix\n";
  }
  if (Status st = ValidateQuery(*query); !st.ok()) return RenderError(st);
  std::string name = query->name;
  queries_.insert_or_assign(name, std::move(query).value());
  rule_texts_.insert_or_assign(name, std::string(rest));
  return StrCat("query ", name, " defined\n");
}

Result<TslQuery> ReplSession::LookupQuery(std::string_view name) const {
  auto it = queries_.find(name);
  if (it != queries_.end()) return it->second;
  auto vit = views_.find(name);
  if (vit != views_.end()) return vit->second;
  return Status::NotFound(StrCat("no query or view named ", name));
}

std::vector<TslQuery> ReplSession::Views() const {
  std::vector<TslQuery> views;
  for (const auto& [name, view] : views_) views.push_back(view);
  return views;
}

ChaseOptions ReplSession::MakeChaseOptions() const {
  ChaseOptions options;
  options.constraints = constraints_ptr();
  for (const auto& [name, view] : views_) {
    options.constraint_exempt_sources.insert(name);
  }
  return options;
}

std::string ReplSession::Eval(std::string_view rest) {
  std::string_view name = TakeWord(&rest);
  auto query = LookupQuery(name);
  if (!query.ok()) return RenderError(query.status());
  auto answer = Evaluate(*query, catalog_);
  if (!answer.ok()) return RenderError(answer.status());
  return answer->ToString();
}

std::string ReplSession::Rewrite(std::string_view rest, bool contained) {
  std::string_view name = TakeWord(&rest);
  bool total = TakeWord(&rest) == "total";
  auto query = LookupQuery(name);
  if (!query.ok()) return RenderError(query.status());
  RewriteOptions options;
  options.constraints = constraints_ptr();
  options.require_total = total;
  options.tracer = StartTrace();
  options.metrics = &metrics_;
  if (contained) {
    auto result = FindMaximallyContainedRewriting(*query, Views(), options);
    if (!result.ok()) return RenderError(result.status());
    std::string out =
        StrCat(result->rewriting.rules.size(), " contained rule(s)",
               result->equivalent ? " (union is equivalent)" : "", "\n");
    for (const TslQuery& rule : result->rewriting.rules) {
      out += StrCat("  ", rule.ToString(), "\n");
    }
    return out;
  }
  auto result = RewriteQuery(*query, Views(), options);
  if (!result.ok()) return RenderError(result.status());
  std::string out = StrCat(result->rewritings.size(), " rewriting(s); ",
                           result->mappings_found, " mapping(s), ",
                           result->candidates_tested, " candidate(s) tested\n");
  for (const TslQuery& rw : result->rewritings) {
    out += StrCat("  ", rw.ToString(), "\n");
  }
  return out;
}

std::string ReplSession::Explain(std::string_view rest) {
  std::string_view name = TakeWord(&rest);
  auto query = LookupQuery(name);
  if (!query.ok()) return RenderError(query.status());
  ChaseOptions chase_options = MakeChaseOptions();
  auto chased = ChaseQuery(*query, chase_options);
  if (!chased.ok()) {
    if (chased.status().IsUnsatisfiable()) {
      return StrCat("query is unsatisfiable under the dependencies: ",
                    chased.status().message(), "\n");
    }
    return RenderError(chased.status());
  }
  std::string out = StrCat("chased query:\n  ", chased->ToString(), "\n");

  std::vector<TslQuery> chased_views;
  for (const auto& [vname, view] : views_) {
    auto cv = ChaseQuery(view, chase_options);
    if (cv.ok()) chased_views.push_back(std::move(cv).value());
  }
  size_t mappings = 0;
  auto atoms =
      BuildCandidateAtoms(*chased, chased_views, &mappings);
  if (!atoms.ok()) return RenderError(atoms.status());
  out += StrCat("step 1A: ", mappings, " mapping(s) -> ",
                std::count_if(atoms->begin(), atoms->end(),
                              [](const CandidateAtom& a) { return a.is_view; }),
                " view instantiation(s):\n");
  for (const CandidateAtom& atom : *atoms) {
    if (!atom.is_view) continue;
    out += StrCat("  ", atom.condition.ToString(), "  covers {",
                  JoinMapped(atom.covers, ",",
                             [](size_t i) { return StrCat(i); }),
                  "}\n");
  }
  RewriteOptions options;
  options.constraints = constraints_ptr();
  auto result = RewriteQuery(*query, Views(), options);
  if (!result.ok()) return RenderError(result.status());
  out += StrCat("steps 1B-2: ", result->candidates_generated,
                " candidate(s) generated, ", result->candidates_tested,
                " composed+tested, ", result->rewritings.size(),
                " equivalent:\n");
  for (const TslQuery& rw : result->rewritings) {
    auto composed = ComposeWithViews(rw, Views());
    out += StrCat("  ", rw.ToString(), "\n");
    if (composed.ok()) {
      for (const TslQuery& rule : composed->rules) {
        out += StrCat("    expands to: ", rule.ToString(), "\n");
      }
    }
  }
  return out;
}

std::string ReplSession::Minimize(std::string_view rest) {
  std::string_view name = TakeWord(&rest);
  auto query = LookupQuery(name);
  if (!query.ok()) return RenderError(query.status());
  auto minimized = MinimizeQuery(*query, MakeChaseOptions());
  if (!minimized.ok()) return RenderError(minimized.status());
  return StrCat(minimized->ToString(), "\n");
}

std::string ReplSession::Equivalent(std::string_view rest) {
  std::string_view a = TakeWord(&rest);
  std::string_view b = TakeWord(&rest);
  auto qa = LookupQuery(a);
  if (!qa.ok()) return RenderError(qa.status());
  auto qb = LookupQuery(b);
  if (!qb.ok()) return RenderError(qb.status());
  auto eq = AreEquivalent(*qa, *qb, MakeChaseOptions());
  if (!eq.ok()) return RenderError(eq.status());
  return *eq ? "equivalent\n" : "not equivalent\n";
}

Analyzer ReplSession::MakeAnalyzer() const {
  AnalyzerOptions options;
  options.constraints = constraints_ptr();
  for (const auto& [name, view] : views_) {
    options.constraint_exempt_sources.insert(name);
  }
  return Analyzer(options);
}

std::string ReplSession::RenderReport(const AnalysisReport& report) const {
  if (report.diagnostics.empty()) return "no diagnostics\n";
  std::string out;
  for (const Diagnostic& d : report.diagnostics) {
    auto it = rule_texts_.find(d.rule);
    out += RenderDiagnostic(
        d, it != rule_texts_.end() ? std::string_view(it->second)
                                   : std::string_view());
  }
  out += StrCat(report.count(Severity::kError), " error(s), ",
                report.count(Severity::kWarning), " warning(s), ",
                report.count(Severity::kNote), " note(s)\n");
  return out;
}

std::string ReplSession::Analyze(std::string_view rest) {
  std::string_view name = TakeWord(&rest);
  Analyzer analyzer = MakeAnalyzer();
  if (!name.empty()) {
    auto query = LookupQuery(name);
    if (!query.ok()) return RenderError(query.status());
    return RenderReport(analyzer.AnalyzeQuery(*query));
  }
  // All rules at once: the views go through AnalyzeRules so the cross-rule
  // dead-view pass sees them together; queries are analyzed one by one.
  AnalysisReport report = analyzer.AnalyzeRules(Views());
  for (const auto& [qname, query] : queries_) {
    AnalysisReport qr = analyzer.AnalyzeQuery(query);
    report.diagnostics.insert(report.diagnostics.end(),
                              qr.diagnostics.begin(), qr.diagnostics.end());
  }
  return RenderReport(report);
}

std::string ReplSession::Compile(std::string_view rest) {
  constexpr std::string_view kUsage =
      "usage: compile [save <path> | load <path>]\n";
  std::string_view word = TakeWord(&rest);
  std::string path;
  bool save = false;
  bool load = false;
  if (word == "save" || word == "load") {
    path = std::string(TakeWord(&rest));
    if (path.empty() || !Trim(rest).empty()) return std::string(kUsage);
    save = word == "save";
    load = word == "load";
  } else if (!word.empty()) {
    return std::string(kUsage);
  }

  std::shared_ptr<const CompiledCatalog> compiled;
  if (load) {
    auto loaded = LoadCatalogIndex(path);
    if (!loaded.ok()) return RenderError(loaded.status());
    compiled = std::move(loaded).value();
  } else {
    // Capabilities are the real catalog when declared; otherwise every
    // plain view becomes a single-capability source (DescribeViews), so
    // `compile` is useful before any `capability` line exists.
    std::vector<SourceDescription> sources;
    if (!capabilities_.empty()) {
      for (const auto& [src, sd] : capabilities_) sources.push_back(sd);
    } else {
      sources = DescribeViews(Views());
    }
    if (sources.empty()) {
      return "error: no capabilities or views to compile\n";
    }
    CatalogCompileOptions options;
    options.tracer = StartTrace();
    options.metrics = &metrics_;
    auto result = CompileCatalog(sources, constraints_ptr(), options);
    if (!result.ok()) return RenderError(result.status());
    compiled = std::move(result).value();
    if (save) {
      if (Status st = SaveCatalogIndex(*compiled, path); !st.ok()) {
        return RenderError(st);
      }
    }
  }

  std::string out;
  for (const Diagnostic& d : compiled->diagnostics()) {
    auto it = rule_texts_.find(d.rule);
    out += RenderDiagnostic(
        d, it != rule_texts_.end() ? std::string_view(it->second)
                                   : std::string_view());
  }
  out += StrCat(compiled->Summary(), "\n");
  if (save) out += StrCat("wrote index ", path, "\n");
  // A running server ingests the index if it validates against the current
  // mediator (same views, same constraints); otherwise it is reported and
  // the server keeps scanning.
  if (server_ != nullptr) {
    Status attached = server_->AttachCatalogIndex(compiled);
    out += attached.ok()
               ? "index attached to the running server\n"
               : StrCat("index not attached: ", attached.ToString(), "\n");
  }
  if (cluster_ != nullptr) {
    Status attached = cluster_->AttachCatalogIndex(compiled);
    out += attached.ok() ? "index replicated to every cluster shard\n"
                         : StrCat("index not attached to the cluster: ",
                                  attached.ToString(), "\n");
  }
  return out;
}

std::string ReplSession::Materialize(std::string_view rest) {
  std::string_view name = TakeWord(&rest);
  auto it = views_.find(name);
  if (it == views_.end()) {
    return StrCat("error: no view named ", name, "\n");
  }
  auto result = MaterializeView(it->second, catalog_);
  if (!result.ok()) return RenderError(result.status());
  size_t objects = result->ReachableOids().size();
  std::string source_name = result->name();
  catalog_.Put(std::move(result).value());
  if (server_ != nullptr) {
    server_->UpdateCatalog(*catalog_.Find(source_name).value());
  }
  if (cluster_ != nullptr) {
    cluster_->UpdateCatalog(*catalog_.Find(source_name).value());
  }
  bool published = server_ != nullptr || cluster_ != nullptr;
  return StrCat("view ", name, " materialized as a source (", objects,
                " objects)", published ? ", published" : "", "\n");
}

std::string ReplSession::DefineCapability(std::string_view rest) {
  std::string_view source = TakeWord(&rest);
  if (source.empty() || rest.empty()) {
    return "usage: capability <source> (Name) <head> :- <body>\n";
  }
  auto view = ParseTslQuery(rest);
  if (!view.ok()) return RenderError(view.status());
  if (view->name.empty()) {
    return "error: capability views need a (Name) prefix\n";
  }
  if (Status st = ValidateQuery(*view); !st.ok()) return RenderError(st);
  for (const Condition& c : view->body) {
    if (c.source != source) {
      return StrCat("error: capability of ", source,
                    " ranges over foreign source ", c.source, "\n");
    }
  }
  std::string name = view->name;
  SourceDescription& sd = capabilities_[std::string(source)];
  sd.source = std::string(source);
  // Redefinition replaces; a fresh name appends to the interface.
  bool replaced = false;
  for (Capability& cap : sd.capabilities) {
    if (cap.view.name == name) {
      cap.view = *view;
      replaced = true;
      break;
    }
  }
  if (!replaced) sd.capabilities.push_back(Capability{*view, {}});
  rule_texts_.insert_or_assign(name, std::string(rest));
  // A capability change alters the running planning interface: swap a
  // rebuilt mediator into the server and/or every cluster shard (a fresh
  // plan-cache generation comes with each swap).
  if (server_ != nullptr || cluster_ != nullptr) {
    std::vector<SourceDescription> sources;
    for (const auto& [src, desc] : capabilities_) sources.push_back(desc);
    auto mediator = Mediator::Make(std::move(sources), constraints_ptr());
    if (!mediator.ok()) {
      return StrCat("capability ", name, " of ", source,
                    replaced ? " redefined" : " defined",
                    ", but the running interface was kept: ",
                    mediator.status().ToString(), "\n");
    }
    std::string where;
    std::string maintenance;
    if (server_ != nullptr) {
      MaintenanceReport report = server_->ReplaceMediator(*mediator);
      where = "server";
      maintenance = report.ToString();
    }
    if (cluster_ != nullptr) {
      MaintenanceReport report = cluster_->ReplaceMediator(*mediator);
      where += where.empty() ? "cluster" : " and cluster";
      maintenance = report.ToString();
    }
    return StrCat("capability ", name, " of ", source,
                  replaced ? " redefined" : " defined", ", ", where,
                  " mediator replaced: ", maintenance, "\n");
  }
  return StrCat("capability ", name, " of ", source,
                replaced ? " redefined\n" : " defined\n");
}

std::string ReplSession::SetFault(std::string_view rest) {
  constexpr std::string_view kUsage =
      "usage: fault <source> unavailable|flaky <p>|slow <ticks>|"
      "truncated <n>|none\n";
  std::string_view source = TakeWord(&rest);
  std::string_view kind = TakeWord(&rest);
  if (source.empty() || kind.empty()) return std::string(kUsage);
  if (kind == "none") {
    faults_.erase(std::string(source));
    return StrCat("fault on ", source, " cleared\n");
  }
  Fault fault;
  if (kind == "unavailable") {
    fault = Fault::Unavailable();
  } else if (kind == "flaky") {
    std::string p(TakeWord(&rest));
    if (p.empty()) return std::string(kUsage);
    fault = Fault::Flaky(std::strtod(p.c_str(), nullptr));
  } else if (kind == "slow") {
    std::string ticks(TakeWord(&rest));
    if (ticks.empty()) return std::string(kUsage);
    fault = Fault::SlowBy(std::strtoull(ticks.c_str(), nullptr, 10));
  } else if (kind == "truncated") {
    std::string keep(TakeWord(&rest));
    if (keep.empty()) return std::string(kUsage);
    fault = Fault::Truncated(std::strtoull(keep.c_str(), nullptr, 10));
  } else {
    return std::string(kUsage);
  }
  faults_[std::string(source)] = fault;
  return StrCat("fault on ", source, ": ", fault.ToString(), "\n");
}

std::string ReplSession::PlanCmd(std::string_view rest) {
  constexpr std::string_view kUsage = "usage: plan <query> [ir]\n";
  std::string_view name = TakeWord(&rest);
  if (name.empty()) return std::string(kUsage);
  std::string_view mode = TakeWord(&rest);
  if (!mode.empty() && mode != "ir") return std::string(kUsage);
  auto query = LookupQuery(name);
  if (!query.ok()) return RenderError(query.status());

  std::vector<TslQuery> rewritings;
  std::string out;
  if (!capabilities_.empty()) {
    std::vector<SourceDescription> sources;
    for (const auto& [src, sd] : capabilities_) sources.push_back(sd);
    auto mediator = Mediator::Make(std::move(sources), constraints_ptr());
    if (!mediator.ok()) return RenderError(mediator.status());
    auto plans = mediator->Plan(*query);
    if (!plans.ok()) return RenderError(plans.status());
    out = StrCat(plans->size(), " capability plan(s)",
                 plans->truncated ? " (truncated)" : "", ":\n");
    for (const MediatorPlan& plan : *plans) {
      out += StrCat("  ", plan.ToString(), "\n");
      rewritings.push_back(plan.rewriting);
    }
  } else if (!views_.empty()) {
    RewriteOptions options;
    options.constraints = constraints_ptr();
    auto result = RewriteQuery(*query, Views(), options);
    if (!result.ok()) return RenderError(result.status());
    out = StrCat(result->rewritings.size(), " rewriting plan(s):\n");
    for (const TslQuery& rw : result->rewritings) {
      out += StrCat("  ", rw.ToString(), "\n");
      rewritings.push_back(rw);
    }
  } else {
    return "error: no capabilities or views defined (see `capability`, "
           "`view`)\n";
  }
  if (mode != "ir") return out;
  if (rewritings.empty()) return StrCat(out, "nothing to compile\n");
  PlanCompiler compiler(IrPassOptions{}, &metrics_);
  auto program = compiler.CompilePlans(rewritings);
  if (!program.ok()) return RenderError(program.status());
  out += PassStatsTable(**program);
  out += Disassemble(**program);
  return out;
}

std::string ReplSession::Mediate(std::string_view rest) {
  std::string_view name = TakeWord(&rest);
  if (name.empty()) return "usage: mediate <query> [seed <n>]\n";
  uint64_t seed = 0;
  if (std::string_view word = TakeWord(&rest); word == "seed") {
    std::string value(TakeWord(&rest));
    if (value.empty()) return "usage: mediate <query> [seed <n>]\n";
    seed = std::strtoull(value.c_str(), nullptr, 10);
  } else if (!word.empty()) {
    return "usage: mediate <query> [seed <n>]\n";
  }
  auto query = LookupQuery(name);
  if (!query.ok()) return RenderError(query.status());
  if (capabilities_.empty()) {
    return "error: no capabilities defined (see `capability`)\n";
  }
  std::vector<SourceDescription> sources;
  for (const auto& [src, sd] : capabilities_) sources.push_back(sd);
  auto mediator = Mediator::Make(std::move(sources), constraints_ptr());
  if (!mediator.ok()) return RenderError(mediator.status());
  CatalogWrapper base;
  // With tracing on, execution runs on the trace clock so span timestamps
  // are the same virtual ticks deadlines and backoffs count in.
  Tracer* tracer = StartTrace();
  VirtualClock local_clock;
  VirtualClock* clock =
      tracer != nullptr ? trace_clock_.get() : &local_clock;
  FaultInjector injector(&base, seed, clock);
  injector.set_tracer(tracer);
  for (const auto& [src, fault] : faults_) {
    FaultSchedule schedule;
    schedule.steady_state = fault;
    injector.SetSchedule(src, std::move(schedule));
  }
  ExecutionPolicy policy;
  policy.wrapper = &injector;
  policy.clock = clock;
  policy.seed = seed;
  policy.tracer = tracer;
  policy.metrics = &metrics_;
  auto answer = mediator->Answer(*query, catalog_, policy);
  if (!answer.ok()) return RenderError(answer.status());
  std::string out =
      StrCat(answer->result.ToString(), answer->report.ToString());
  if (tracer != nullptr) {
    out += StrCat("trace: ", tracer->span_count(),
                  " span(s) recorded (`trace dump`)\n");
  }
  return out;
}

std::string ReplSession::Chaos(std::string_view rest) {
  constexpr std::string_view kUsage =
      "usage: chaos [seed <n>] [requests <n>]\n";
  uint64_t seed = 0;
  size_t requests = 6;
  while (!rest.empty()) {
    std::string_view word = TakeWord(&rest);
    std::string value(TakeWord(&rest));
    if (value.empty()) return std::string(kUsage);
    if (word == "seed") {
      seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (word == "requests") {
      requests = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      return std::string(kUsage);
    }
  }
  if (capabilities_.empty()) {
    return "error: no capabilities defined (see `capability`)\n";
  }
  if (queries_.empty()) return "error: no queries defined (see `query`)\n";
  std::vector<SourceDescription> sources;
  for (const auto& [src, sd] : capabilities_) sources.push_back(sd);
  std::vector<TslQuery> queries;
  for (const auto& [name, query] : queries_) queries.push_back(query);
  ChaosOptions options;
  options.seed = seed;
  options.requests_per_phase = requests;
  // The drill runs its own server (phases mutate snapshots and saturate
  // the pool); a `serve start` session is untouched.
  auto script = StandardChaosScript(sources, options);
  auto drill = RunChaosDrill(sources, catalog_, queries, script, options);
  if (!drill.ok()) return RenderError(drill.status());
  std::string out = drill->report;
  for (const std::string& violation : drill->violations) {
    out += StrCat("violation: ", violation, "\n");
  }
  return out;
}

std::string ReplSession::Serve(std::string_view rest) {
  constexpr std::string_view kUsage =
      "usage: serve start [threads <n>] [queue <n>] [cache <n>]\n"
      "       serve <query> [seed <n>]\n"
      "       serve stop\n";
  std::string_view word = TakeWord(&rest);
  if (word.empty()) return std::string(kUsage);
  if (word == "start") return ServeStart(rest);
  if (word == "stop") {
    if (server_ == nullptr) return "no server running\n";
    server_.reset();  // drains admitted requests, joins the workers
    return "server stopped\n";
  }
  if (server_ == nullptr) {
    return "error: no server running (see `serve start`)\n";
  }
  uint64_t seed = 0;
  if (std::string_view option = TakeWord(&rest); option == "seed") {
    std::string value(TakeWord(&rest));
    if (value.empty()) return std::string(kUsage);
    seed = std::strtoull(value.c_str(), nullptr, 10);
  } else if (!option.empty()) {
    return std::string(kUsage);
  }
  auto query = LookupQuery(word);
  if (!query.ok()) return RenderError(query.status());
  ServeOptions serve;
  serve.seed = seed;
  // The server rebinds the tracer to its per-request clock (set_clock)
  // before the request span opens; trace_clock_ is just the placeholder
  // the tracer is born with.
  serve.tracer = StartTrace();
  auto submitted = server_->Submit(*query, serve);
  if (!submitted.ok()) return RenderError(submitted.status());
  auto response = std::move(submitted).value().get();
  if (!response.ok()) return RenderError(response.status());
  std::string out =
      StrCat(response->answer.result.ToString(), "plan cache: ",
             response->plan_cache_hit ? "hit" : "miss", "\n");
  if (serve.tracer != nullptr) {
    out += StrCat("trace: ", serve.tracer->span_count(),
                  " span(s) recorded (`trace dump`)\n");
  }
  return out;
}

std::string ReplSession::ServeStart(std::string_view rest) {
  constexpr std::string_view kUsage =
      "usage: serve start [threads <n>] [queue <n>] [cache <n>]\n";
  if (server_ != nullptr) {
    return "error: server already running (see `serve stop`)\n";
  }
  if (capabilities_.empty()) {
    return "error: no capabilities defined (see `capability`)\n";
  }
  ServerOptions options;
  options.metrics = &metrics_;
  while (!rest.empty()) {
    std::string_view option = TakeWord(&rest);
    std::string value(TakeWord(&rest));
    if (value.empty()) return std::string(kUsage);
    uint64_t parsed = std::strtoull(value.c_str(), nullptr, 10);
    if (option == "threads") {
      options.threads = static_cast<size_t>(parsed);
    } else if (option == "queue") {
      options.queue_capacity = static_cast<size_t>(parsed);
    } else if (option == "cache") {
      options.plan_cache_capacity = static_cast<size_t>(parsed);
    } else {
      return std::string(kUsage);
    }
  }
  std::vector<SourceDescription> sources;
  for (const auto& [src, sd] : capabilities_) sources.push_back(sd);
  auto mediator = Mediator::Make(std::move(sources), constraints_ptr());
  if (!mediator.ok()) return RenderError(mediator.status());
  // Snapshot the `fault` schedules now: each request replays them through
  // its own injector, seeded by `serve <query> seed <n>`.
  WrapperFactory factory = nullptr;
  if (!faults_.empty()) {
    std::map<std::string, FaultSchedule> schedules;
    for (const auto& [src, fault] : faults_) {
      FaultSchedule schedule;
      schedule.steady_state = fault;
      schedules[src] = std::move(schedule);
    }
    factory = MakeFaultInjectingWrapperFactory(std::move(schedules));
  }
  server_ = std::make_unique<QueryServer>(std::move(mediator).value(),
                                          catalog_, options,
                                          std::move(factory));
  return StrCat("serving ", capabilities_.size(), " source interface(s) on ",
                options.threads, " thread(s) (queue ", options.queue_capacity,
                ", plan cache ", options.plan_cache_capacity, ")\n");
}

std::string ReplSession::Cluster(std::string_view rest) {
  constexpr std::string_view kUsage =
      "usage: cluster start [shards <n>] [threads <n>] [queue <n>] "
      "[cache <n>]\n"
      "       cluster <query> [seed <n>]\n"
      "       cluster stats\n"
      "       cluster stop\n";
  std::string_view word = TakeWord(&rest);
  if (word.empty()) return std::string(kUsage);
  if (word == "start") return ClusterStart(rest);
  if (word == "stop") {
    if (cluster_ == nullptr) return "no cluster running\n";
    cluster_.reset();  // every shard drains its admitted requests and joins
    return "cluster stopped\n";
  }
  if (cluster_ == nullptr) {
    return "error: no cluster running (see `cluster start`)\n";
  }
  if (word == "stats") {
    if (!Trim(rest).empty()) return std::string(kUsage);
    return cluster_->Statsz();
  }
  uint64_t seed = 0;
  if (std::string_view option = TakeWord(&rest); option == "seed") {
    std::string value(TakeWord(&rest));
    if (value.empty()) return std::string(kUsage);
    seed = std::strtoull(value.c_str(), nullptr, 10);
  } else if (!option.empty()) {
    return std::string(kUsage);
  }
  auto query = LookupQuery(word);
  if (!query.ok()) return RenderError(query.status());
  ServeOptions serve;
  serve.seed = seed;
  serve.tracer = StartTrace();  // records the cluster.route span too
  auto submitted = cluster_->Submit(*query, serve);
  if (!submitted.ok()) return RenderError(submitted.status());
  auto response = std::move(submitted).value().get();
  if (!response.ok()) return RenderError(response.status());
  const uint64_t fingerprint = MakePlanCacheKey(*query).fingerprint;
  std::string out = StrCat(
      response->answer.result.ToString(), "routed to shard ",
      cluster_->RouteOf(fingerprint), " of ", cluster_->shards(),
      "; plan cache: ", response->plan_cache_hit ? "hit" : "miss", "\n");
  if (serve.tracer != nullptr) {
    out += StrCat("trace: ", serve.tracer->span_count(),
                  " span(s) recorded (`trace dump`)\n");
  }
  return out;
}

std::string ReplSession::ClusterStart(std::string_view rest) {
  constexpr std::string_view kUsage =
      "usage: cluster start [shards <n>] [threads <n>] [queue <n>] "
      "[cache <n>]\n";
  if (cluster_ != nullptr) {
    return "error: cluster already running (see `cluster stop`)\n";
  }
  if (capabilities_.empty()) {
    return "error: no capabilities defined (see `capability`)\n";
  }
  ClusterOptions options;
  options.shards = 2;
  options.server.metrics = &metrics_;
  while (!rest.empty()) {
    std::string_view option = TakeWord(&rest);
    std::string value(TakeWord(&rest));
    if (value.empty()) return std::string(kUsage);
    uint64_t parsed = std::strtoull(value.c_str(), nullptr, 10);
    if (option == "shards") {
      options.shards = static_cast<size_t>(parsed);
    } else if (option == "threads") {
      options.server.threads = static_cast<size_t>(parsed);
    } else if (option == "queue") {
      options.server.queue_capacity = static_cast<size_t>(parsed);
    } else if (option == "cache") {
      options.server.plan_cache_capacity = static_cast<size_t>(parsed);
    } else {
      return std::string(kUsage);
    }
  }
  if (options.shards == 0) return "error: shards must be at least 1\n";
  std::vector<SourceDescription> sources;
  for (const auto& [src, sd] : capabilities_) sources.push_back(sd);
  auto mediator = Mediator::Make(std::move(sources), constraints_ptr());
  if (!mediator.ok()) return RenderError(mediator.status());
  // `fault` schedules are snapshotted like `serve start` does: every shard
  // worker replays them per request through its own injector.
  WrapperFactory factory = nullptr;
  if (!faults_.empty()) {
    std::map<std::string, FaultSchedule> schedules;
    for (const auto& [src, fault] : faults_) {
      FaultSchedule schedule;
      schedule.steady_state = fault;
      schedules[src] = std::move(schedule);
    }
    factory = MakeFaultInjectingWrapperFactory(std::move(schedules));
  }
  cluster_ = std::make_unique<ShardRouter>(std::move(mediator).value(),
                                           catalog_, options,
                                           std::move(factory));
  return StrCat("cluster of ", options.shards, " shard(s) serving ",
                capabilities_.size(), " source interface(s) (",
                options.server.threads, " thread(s)/shard, queue ",
                options.server.queue_capacity, ", plan cache ",
                options.server.plan_cache_capacity, " per shard)\n");
}

std::string ReplSession::Stats(std::string_view rest) {
  if (!Trim(rest).empty()) return "usage: stats\n";
  std::string out;
  if (server_ != nullptr) out += server_->stats().ToString();
  if (cluster_ != nullptr) out += cluster_->stats().ToString();
  std::string metrics = metrics_.ToText();
  if (!metrics.empty()) {
    out += "metrics:\n";
    out += metrics;
  }
  if (out.empty()) {
    return "no server running and no metrics recorded yet\n";
  }
  return out;
}

Tracer* ReplSession::StartTrace() {
  if (!trace_enabled_) return nullptr;
  // Drop the old tracer before its clock: last_trace_ holds a pointer into
  // trace_clock_, so the replacement order matters.
  last_trace_.reset();
  trace_clock_ = std::make_unique<VirtualClock>();
  last_trace_ = std::make_unique<Tracer>(trace_clock_.get());
  return last_trace_.get();
}

std::string ReplSession::TraceCmd(std::string_view rest) {
  constexpr std::string_view kUsage = "usage: trace on|off|dump [json]\n";
  std::string_view word = TakeWord(&rest);
  if (word == "on") {
    if (!Trim(rest).empty()) return std::string(kUsage);
    trace_enabled_ = true;
    return "tracing on: rewrite/mediate/serve record spans "
           "(`trace dump` shows the last command)\n";
  }
  if (word == "off") {
    if (!Trim(rest).empty()) return std::string(kUsage);
    trace_enabled_ = false;
    return "tracing off\n";
  }
  if (word == "dump") {
    std::string_view format = TakeWord(&rest);
    if (!format.empty() && format != "json") return std::string(kUsage);
    if (!Trim(rest).empty()) return std::string(kUsage);
    if (last_trace_ == nullptr) {
      return "no trace recorded (see `trace on`, then run a command)\n";
    }
    return format == "json" ? last_trace_->ToChromeJson()
                            : last_trace_->ToText();
  }
  return std::string(kUsage);
}

std::string ReplSession::Show(std::string_view rest) {
  std::string_view what = TakeWord(&rest);
  if (what == "sources") {
    std::string out;
    for (const auto& [name, db] : catalog_.sources()) {
      out += StrCat(name, ": ", db.ReachableOids().size(),
                    " reachable objects, ", db.roots().size(), " roots\n");
    }
    return out.empty() ? "no sources\n" : out;
  }
  if (what == "views") {
    std::string out;
    for (const auto& [name, view] : views_) {
      out += StrCat("(", name, ") ", view.ToString(), "\n");
    }
    return out.empty() ? "no views\n" : out;
  }
  if (what == "queries") {
    std::string out;
    for (const auto& [name, query] : queries_) {
      out += StrCat("(", name, ") ", query.ToString(), "\n");
    }
    return out.empty() ? "no queries\n" : out;
  }
  if (what == "constraints") {
    if (!constraints_.has_value()) return "no constraints\n";
    return constraints_->dtd().ToString();
  }
  if (what == "capabilities") {
    std::string out;
    for (const auto& [src, sd] : capabilities_) {
      for (const Capability& cap : sd.capabilities) {
        out += StrCat(src, ": (", cap.view.name, ") ", cap.view.ToString(),
                      "\n");
      }
    }
    return out.empty() ? "no capabilities\n" : out;
  }
  if (what == "faults") {
    std::string out;
    for (const auto& [src, fault] : faults_) {
      out += StrCat(src, ": ", fault.ToString(), "\n");
    }
    return out.empty() ? "no faults\n" : out;
  }
  return "usage: show sources|views|queries|constraints|capabilities|"
         "faults\n";
}

std::string ReplSession::Load(std::string_view rest) {
  std::string path(TakeWord(&rest));
  std::ifstream in(path);
  if (!in) return StrCat("error: cannot open ", path, "\n");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ExecuteScript(buffer.str());
}

std::string ReplSession::WriteSource(std::string_view rest) {
  std::string_view name = TakeWord(&rest);
  std::string path(TakeWord(&rest));
  auto db = catalog_.Find(name);
  if (!db.ok()) return RenderError(db.status());
  if (path.empty()) return "usage: write <source> <path>\n";
  std::ofstream out(path);
  if (!out) return StrCat("error: cannot open ", path, " for writing\n");
  out << (*db)->ToString();
  return StrCat("wrote ", name, " to ", path, "\n");
}

}  // namespace tslrw
