#ifndef TSLRW_REPL_REPL_H_
#define TSLRW_REPL_REPL_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "analysis/analyzer.h"
#include "cluster/cluster.h"
#include "common/result.h"
#include "constraints/inference.h"
#include "mediator/fault.h"
#include "mediator/mediator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "oem/database.h"
#include "rewrite/chase.h"
#include "service/server.h"
#include "tsl/ast.h"

namespace tslrw {

/// \brief The interactive session behind the `tslrw_shell` example binary:
/// a line-oriented interface to the whole library — define sources, views,
/// queries, and constraints; evaluate, rewrite, minimize, compare.
///
/// Commands (one per line; `%` comments; statements may span lines until
/// they parse — the shell feeds complete statements):
///
/// ```
/// source database db { <p1 person { <n1 name ann> }> }
/// dtd <!ELEMENT person (name)> <!ELEMENT name CDATA>
/// dataguide db                  % infer constraints from an instance
/// view (V1) <g(P') p {...}> :- <P' p {...}>@db
/// query (Q3) <f(P) out yes> :- <P p {<X Y leland>}>@db
/// eval Q3
/// rewrite Q3 [total]
/// contained Q3 [total]
/// explain Q3                    % mappings, candidates, verdicts
/// minimize Q3
/// equivalent Q3 Q4
/// analyze [Q3]                  % static diagnostics, all rules or one
/// compile [save p | load p]     % whole-catalog analysis + view index
/// materialize V1                % view result becomes a source
/// capability db (Y97) <...> :- <...>@db   % declare a source interface
/// fault db flaky 0.5            % script a wrapper fault for `mediate`
/// plan Q3 [ir]                  % rewriting plan set; `ir` dumps the
///                               % compiled flat IR + per-pass op counts
/// mediate Q3 [seed 7]           % fault-tolerant plan + execute + report
/// serve start [threads 4] [queue 128] [cache 256]
///                               % start the concurrent serving layer
/// serve Q3 [seed 7]             % answer through the server + plan cache
/// serve stop
/// cluster start [shards 4] [threads 4] [queue 128] [cache 256]
///                               % start the sharded cluster front-end
/// cluster Q3 [seed 7]           % route by fingerprint to a shard
/// cluster stats                 % router counters + per-shard /statsz
/// cluster stop
/// chaos [seed 7]                % deterministic multi-phase fault drill
/// stats                         % serving-layer counters + session metrics
/// trace on                      % record spans for rewrite/mediate/serve
/// trace dump [json]             % last trace as text or Chrome JSON
/// show sources|views|queries|constraints|capabilities|faults
/// help
/// ```
///
/// Execute returns the text to print; errors are rendered, not thrown, so
/// a scripted session never aborts.
class ReplSession {
 public:
  ReplSession() = default;

  /// Executes one command line and returns its output (possibly
  /// multi-line, without a trailing prompt).
  std::string Execute(std::string_view line);

  /// Executes a script: one command per line (`\` at end of line
  /// continues a statement). Also behind the `load <path>` command.
  std::string ExecuteScript(std::string_view script);

  /// True after a `quit`/`exit` command.
  bool done() const { return done_; }

  const SourceCatalog& catalog() const { return catalog_; }

 private:
  std::string Source(std::string_view rest);
  std::string DefineDtd(std::string_view rest);
  std::string InferConstraints(std::string_view rest);
  std::string DefineView(std::string_view rest);
  std::string DefineQuery(std::string_view rest);
  std::string Eval(std::string_view rest);
  std::string Rewrite(std::string_view rest, bool contained);
  std::string Explain(std::string_view rest);
  std::string Minimize(std::string_view rest);
  std::string Equivalent(std::string_view rest);
  std::string Analyze(std::string_view rest);
  std::string Compile(std::string_view rest);
  std::string Materialize(std::string_view rest);
  std::string PlanCmd(std::string_view rest);
  std::string DefineCapability(std::string_view rest);
  std::string SetFault(std::string_view rest);
  std::string Mediate(std::string_view rest);
  std::string Chaos(std::string_view rest);
  std::string Serve(std::string_view rest);
  std::string ServeStart(std::string_view rest);
  std::string Cluster(std::string_view rest);
  std::string ClusterStart(std::string_view rest);
  std::string Stats(std::string_view rest);
  std::string TraceCmd(std::string_view rest);
  std::string Show(std::string_view rest);
  std::string Load(std::string_view rest);
  std::string WriteSource(std::string_view rest);

  Result<TslQuery> LookupQuery(std::string_view name) const;
  const StructuralConstraints* constraints_ptr() const {
    return constraints_.has_value() ? &*constraints_ : nullptr;
  }
  std::vector<TslQuery> Views() const;
  /// Chase options with constraints scoped away from view-sourced
  /// conditions (constraints describe source data, not view output).
  ChaseOptions MakeChaseOptions() const;
  /// An analyzer configured like MakeChaseOptions (same constraints, same
  /// exempt view sources).
  Analyzer MakeAnalyzer() const;
  /// Renders \p report with caret snippets where the rule's original text
  /// is on file, plus a severity tally line.
  std::string RenderReport(const AnalysisReport& report) const;

  SourceCatalog catalog_;
  std::map<std::string, TslQuery, std::less<>> views_;
  std::map<std::string, TslQuery, std::less<>> queries_;
  /// Original text of each named rule, keyed by rule name, kept so
  /// `analyze` can render caret snippets pointing into what was typed.
  std::map<std::string, std::string, std::less<>> rule_texts_;
  /// Source interfaces declared with `capability`, keyed by source name;
  /// `mediate` builds a Mediator over them.
  std::map<std::string, SourceDescription, std::less<>> capabilities_;
  /// Steady-state faults scripted with `fault`, injected around `mediate`.
  std::map<std::string, Fault, std::less<>> faults_;
  std::optional<StructuralConstraints> constraints_;
  /// When tracing is on, returns a fresh Tracer (kept for `trace dump`,
  /// clocked by `trace_clock_`); null while tracing is off.
  Tracer* StartTrace();
  /// Session-wide metric sink: `rewrite`, `mediate`, and the serving layer
  /// all record here; `stats` prints it. Declared before `server_` so the
  /// server (whose workers write metrics) is destroyed first.
  MetricRegistry metrics_;
  /// `trace on|off|dump` state. Each traced command replaces the clock and
  /// tracer pair, so `trace dump` always shows the latest command.
  bool trace_enabled_ = false;
  std::unique_ptr<VirtualClock> trace_clock_;
  std::unique_ptr<Tracer> last_trace_;
  /// The concurrent serving layer behind `serve`/`stats`. While running,
  /// catalog mutations (`source`, `materialize`) are routed through its
  /// snapshot swap and `capability` changes replace its mediator; `fault`
  /// schedules are snapshotted at `serve start`.
  std::unique_ptr<QueryServer> server_;
  /// The sharded cluster front-end behind `cluster`. Independent of
  /// `server_` (both can run); catalog mutations replicate to every shard
  /// and `capability` changes replace the cluster's mediator too. Declared
  /// after `metrics_` for the same destruction-order reason as `server_`.
  std::unique_ptr<ShardRouter> cluster_;
  bool done_ = false;
};

}  // namespace tslrw

#endif  // TSLRW_REPL_REPL_H_
