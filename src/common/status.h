#ifndef TSLRW_COMMON_STATUS_H_
#define TSLRW_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace tslrw {

/// \brief Machine-readable category of a failure.
///
/// The library reports recoverable failures through Status / Result<T>
/// rather than exceptions, in the style of RocksDB and Apache Arrow.
enum class StatusCode {
  kOk = 0,
  /// Caller passed arguments that violate an API contract.
  kInvalidArgument,
  /// Text could not be parsed (TSL, OEM data format, DTD).
  kParseError,
  /// A query failed a well-formedness check (safety, head oid uniqueness,
  /// cyclic body pattern, variable-kind clash).
  kIllFormedQuery,
  /// The chase derived contradictory constants (\S3.2: "halt with an
  /// error"); the query is unsatisfiable under the dependencies.
  kUnsatisfiable,
  /// Two assignments fused the same answer object with conflicting atomic
  /// values (\S2 fusion semantics have no consistent model).
  kFusionConflict,
  /// A lookup (view name, source name, object id) found nothing.
  kNotFound,
  /// Internal invariant violation; indicates a library bug.
  kInternal,
  /// A wrapped source could not be reached (down, flaky, or refusing);
  /// possibly transient — the retry layer decides whether to try again.
  kUnavailable,
  /// A per-call or per-query deadline elapsed before the work finished.
  kDeadlineExceeded,
  /// A search or execution budget (candidate cap, attempt cap) was hit in
  /// strict mode, where silent truncation is not acceptable.
  kResourceExhausted,
  /// Persisted bytes failed integrity verification (bad magic, version
  /// mismatch, checksum mismatch, truncation). The data cannot be trusted;
  /// callers fall back to recomputing from source inputs.
  kDataLoss,
};

/// \brief Human-readable name of a StatusCode (e.g. "ParseError").
std::string_view StatusCodeToString(StatusCode code);

/// \brief The result of an operation that can fail without a value.
///
/// A moved-from or default-constructed Status is OK. Failure Statuses carry
/// a code and a message. The class is cheap to copy in the OK case (single
/// null pointer).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given failure \p code and \p message.
  Status(StatusCode code, std::string message);

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IllFormedQuery(std::string msg) {
    return Status(StatusCode::kIllFormedQuery, std::move(msg));
  }
  static Status Unsatisfiable(std::string msg) {
    return Status(StatusCode::kUnsatisfiable, std::move(msg));
  }
  static Status FusionConflict(std::string msg) {
    return Status(StatusCode::kFusionConflict, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  /// Failure message; empty for OK statuses.
  const std::string& message() const;

  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsUnsatisfiable() const { return code() == StatusCode::kUnsatisfiable; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsDataLoss() const { return code() == StatusCode::kDataLoss; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const Rep> rep_;  // null == OK
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Propagates a failing Status out of the enclosing function.
#define TSLRW_RETURN_NOT_OK(expr)                \
  do {                                           \
    ::tslrw::Status _st = (expr);                \
    if (!_st.ok()) return _st;                   \
  } while (false)

}  // namespace tslrw

#endif  // TSLRW_COMMON_STATUS_H_
