#ifndef TSLRW_COMMON_VIRTUAL_CLOCK_H_
#define TSLRW_COMMON_VIRTUAL_CLOCK_H_

#include <cstdint>

namespace tslrw {

/// \brief Injectable virtual time for the fault-tolerant execution layer
/// and the observability layer.
///
/// The mediator core never reads a wall clock: waiting out a backoff or a
/// slow source *advances* a VirtualClock by whole ticks. Tests, the fault
/// injector, and the tracer share one clock, which makes every timeout,
/// backoff, deadline — and every trace span — deterministic and
/// instantaneous: no test ever sleeps, and a fixed seed replays the same
/// span tree byte for byte.
class VirtualClock {
 public:
  uint64_t now() const { return now_; }
  void Advance(uint64_t ticks) { now_ += ticks; }

 private:
  uint64_t now_ = 0;
};

}  // namespace tslrw

#endif  // TSLRW_COMMON_VIRTUAL_CLOCK_H_
