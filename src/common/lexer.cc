#include "common/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace tslrw {

std::string_view TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kString: return "string";
    case TokenKind::kLAngle: return "'<'";
    case TokenKind::kRAngle: return "'>'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kAt: return "'@'";
    case TokenKind::kTurnstile: return "':-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kQuestion: return "'?'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kPipe: return "'|'";
    case TokenKind::kBang: return "'!'";
    case TokenKind::kEof: return "end of input";
  }
  return "token";
}

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  int line = 1;
  int column = 1;
  size_t i = 0;
  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n; ++k, ++i) {
      if (i < input.size() && input[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
  };
  auto push = [&](TokenKind kind, std::string text, int l, int c) {
    tokens.push_back(Token{kind, std::move(text), l, c});
  };
  while (i < input.size()) {
    char c = input[i];
    int tl = line, tc = column;
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    if (c == '%') {  // comment to end of line
      while (i < input.size() && input[i] != '\n') advance(1);
      continue;
    }
    if (c == ':') {
      if (i + 1 < input.size() && input[i + 1] == '-') {
        push(TokenKind::kTurnstile, ":-", tl, tc);
        advance(2);
        continue;
      }
      return Status::ParseError(
          StrCat("stray ':' at ", tl, ":", tc, " (expected ':-')"));
    }
    if (c == '"') {
      std::string text;
      advance(1);
      bool closed = false;
      while (i < input.size()) {
        char d = input[i];
        if (d == '"') {
          advance(1);
          closed = true;
          break;
        }
        if (d == '\\' && i + 1 < input.size()) {
          text += input[i + 1];
          advance(2);
          continue;
        }
        text += d;
        advance(1);
      }
      if (!closed) {
        return Status::ParseError(
            StrCat("unterminated string starting at ", tl, ":", tc));
      }
      push(TokenKind::kString, std::move(text), tl, tc);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
        std::isdigit(static_cast<unsigned char>(c))) {
      std::string text;
      while (i < input.size()) {
        char d = input[i];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '_' ||
            d == '\'' || d == '-') {
          // '-' appears inside DTD names and data like 555-1234; it never
          // begins a token, so this is unambiguous.
          text += d;
          advance(1);
        } else {
          break;
        }
      }
      push(TokenKind::kIdent, std::move(text), tl, tc);
      continue;
    }
    TokenKind kind;
    switch (c) {
      case '<': kind = TokenKind::kLAngle; break;
      case '>': kind = TokenKind::kRAngle; break;
      case '{': kind = TokenKind::kLBrace; break;
      case '}': kind = TokenKind::kRBrace; break;
      case '(': kind = TokenKind::kLParen; break;
      case ')': kind = TokenKind::kRParen; break;
      case ',': kind = TokenKind::kComma; break;
      case '@': kind = TokenKind::kAt; break;
      case '*': kind = TokenKind::kStar; break;
      case '?': kind = TokenKind::kQuestion; break;
      case '+': kind = TokenKind::kPlus; break;
      case '|': kind = TokenKind::kPipe; break;
      case '!': kind = TokenKind::kBang; break;
      default:
        return Status::ParseError(StrCat(tl, ":", tc,
                                         ": unexpected character '",
                                         std::string(1, c), "'"));
    }
    push(kind, std::string(1, c), tl, tc);
    advance(1);
  }
  tokens.push_back(Token{TokenKind::kEof, "", line, column});
  return tokens;
}

const Token& TokenCursor::Peek(size_t lookahead) const {
  size_t idx = pos_ + lookahead;
  if (idx >= tokens_.size()) idx = tokens_.size() - 1;  // EOF token
  return tokens_[idx];
}

Token TokenCursor::Next() {
  Token t = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool TokenCursor::TryConsume(TokenKind kind) {
  if (Peek().kind != kind) return false;
  Next();
  return true;
}

bool TokenCursor::TryConsumeIdent(std::string_view ident) {
  if (Peek().kind != TokenKind::kIdent || Peek().text != ident) return false;
  Next();
  return true;
}

Result<Token> TokenCursor::Expect(TokenKind kind) {
  if (Peek().kind != kind) {
    return ErrorHere(StrCat("expected ", TokenKindToString(kind), ", found ",
                            TokenKindToString(Peek().kind),
                            Peek().text.empty() ? "" : StrCat(" '", Peek().text, "'")));
  }
  return Next();
}

Status TokenCursor::ExpectIdent(std::string_view ident) {
  if (Peek().kind != TokenKind::kIdent || Peek().text != ident) {
    return ErrorHere(StrCat("expected '", ident, "'"));
  }
  Next();
  return Status::OK();
}

Status ErrorAtToken(const Token& token, std::string_view message) {
  return Status::ParseError(
      StrCat(token.line, ":", token.column, ": ", message));
}

Status TokenCursor::ErrorHere(std::string_view message) const {
  return ErrorAtToken(Peek(), message);
}

}  // namespace tslrw
