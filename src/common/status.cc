#include "common/status.h"

namespace tslrw {

namespace {
const std::string kEmpty;
}  // namespace

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kIllFormedQuery:
      return "IllFormedQuery";
    case StatusCode::kUnsatisfiable:
      return "Unsatisfiable";
    case StatusCode::kFusionConflict:
      return "FusionConflict";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_shared<const Rep>(Rep{code, std::move(message)});
  }
}

const std::string& Status::message() const {
  return rep_ ? rep_->message : kEmpty;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace tslrw
