#ifndef TSLRW_COMMON_SOURCE_SPAN_H_
#define TSLRW_COMMON_SOURCE_SPAN_H_

#include <string>

namespace tslrw {

/// \brief A 1-based line/column position in some source text, as computed
/// by the lexer (Token::line/column).
///
/// A default-constructed span is "unknown" (line 0) — the position of AST
/// nodes assembled programmatically rather than parsed. Spans are carried
/// by the TSL AST for diagnostics only; they never participate in node
/// equality or ordering.
struct SourceSpan {
  int line = 0;
  int column = 0;

  bool valid() const { return line > 0; }

  /// "line:column", or "?" for unknown spans.
  std::string ToString() const {
    if (!valid()) return "?";
    return std::to_string(line) + ":" + std::to_string(column);
  }

  friend bool operator==(const SourceSpan& a, const SourceSpan& b) {
    return a.line == b.line && a.column == b.column;
  }
  friend bool operator!=(const SourceSpan& a, const SourceSpan& b) {
    return !(a == b);
  }
};

}  // namespace tslrw

#endif  // TSLRW_COMMON_SOURCE_SPAN_H_
