#ifndef TSLRW_COMMON_LEXER_H_
#define TSLRW_COMMON_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace tslrw {

/// \brief Token categories shared by the TSL, OEM-data, and DTD parsers.
enum class TokenKind {
  kIdent,     ///< identifier or number, e.g. `person`, `X'`, `1993`
  kString,    ///< double-quoted string with \" and \\ escapes (unquoted form)
  kLAngle,    ///< <
  kRAngle,    ///< >
  kLBrace,    ///< {
  kRBrace,    ///< }
  kLParen,    ///< (
  kRParen,    ///< )
  kComma,     ///< ,
  kAt,        ///< @
  kTurnstile, ///< :-
  kStar,      ///< *
  kQuestion,  ///< ?
  kPlus,      ///< +
  kPipe,      ///< |
  kBang,      ///< !
  kEof,
};

std::string_view TokenKindToString(TokenKind kind);

/// \brief A lexed token with its source position (1-based line/column).
struct Token {
  TokenKind kind;
  std::string text;  // identifier spelling or unescaped string contents
  int line = 1;
  int column = 1;
};

/// \brief Splits \p input into tokens.
///
/// Identifiers are `[A-Za-z_][A-Za-z0-9_']*` (primes support the paper's
/// X', Y'' variables) and bare numbers `[0-9][A-Za-z0-9_]*`. `%` starts a
/// comment running to end of line (the paper's own comment convention).
Result<std::vector<Token>> Tokenize(std::string_view input);

/// \brief A ParseError positioned at \p token ("line:column: message").
Status ErrorAtToken(const Token& token, std::string_view message);

/// \brief A cursor over a token stream with the usual peek/expect helpers.
class TokenCursor {
 public:
  explicit TokenCursor(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t lookahead = 0) const;
  bool AtEof() const { return Peek().kind == TokenKind::kEof; }

  /// Consumes and returns the current token.
  Token Next();

  /// True (and advances) iff the current token has the given kind.
  bool TryConsume(TokenKind kind);
  /// True (and advances) iff the current token is the identifier \p ident.
  bool TryConsumeIdent(std::string_view ident);

  /// Consumes a token of kind \p kind or fails with a positioned ParseError.
  Result<Token> Expect(TokenKind kind);
  /// Consumes the identifier \p ident or fails.
  Status ExpectIdent(std::string_view ident);

  /// A ParseError carrying the current token's position and \p message.
  Status ErrorHere(std::string_view message) const;

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace tslrw

#endif  // TSLRW_COMMON_LEXER_H_
