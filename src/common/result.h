#ifndef TSLRW_COMMON_RESULT_H_
#define TSLRW_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace tslrw {

/// \brief Either a value of type T or a failure Status.
///
/// The Arrow-style companion of Status for value-returning fallible
/// operations. Accessing the value of a failed Result aborts in debug
/// builds; callers are expected to check ok() (or use ValueOrDie in tests).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : rep_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(rep_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(rep_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or terminates with the status message. Test helper.
  T ValueOrDie() && {
    if (!ok()) {
      fprintf(stderr, "Result::ValueOrDie on failure: %s\n",
              status().ToString().c_str());
      abort();
    }
    return std::get<T>(std::move(rep_));
  }

 private:
  std::variant<T, Status> rep_;
};

/// Assigns the value of a fallible expression to `lhs`, or propagates the
/// failure Status out of the enclosing function.
#define TSLRW_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value();

#define TSLRW_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define TSLRW_ASSIGN_OR_RETURN_NAME(a, b) TSLRW_ASSIGN_OR_RETURN_CONCAT(a, b)
#define TSLRW_ASSIGN_OR_RETURN(lhs, expr)                                      \
  TSLRW_ASSIGN_OR_RETURN_IMPL(                                                 \
      TSLRW_ASSIGN_OR_RETURN_NAME(_tslrw_result_, __LINE__), lhs, expr)

}  // namespace tslrw

#endif  // TSLRW_COMMON_RESULT_H_
