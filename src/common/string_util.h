#ifndef TSLRW_COMMON_STRING_UTIL_H_
#define TSLRW_COMMON_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace tslrw {

/// \brief Joins the elements of \p parts with \p sep.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// \brief Renders any streamable sequence element-by-element with \p sep,
/// using \p render to stringify each element.
template <typename Range, typename Fn>
std::string JoinMapped(const Range& range, std::string_view sep, Fn render) {
  std::string out;
  bool first = true;
  for (const auto& item : range) {
    if (!first) out += sep;
    first = false;
    out += render(item);
  }
  return out;
}

/// \brief printf-lite concatenation of streamable values.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

/// \brief Appends the concatenation of streamable values to \p out.
template <typename... Args>
void StrAppend(std::string* out, const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  out->append(os.str());
}

/// \brief True iff \p s starts with \p prefix.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace tslrw

#endif  // TSLRW_COMMON_STRING_UTIL_H_
