#include "analysis/analyzer.h"

#include <cctype>
#include <map>
#include <utility>

#include "common/string_util.h"
#include "equiv/equivalence.h"
#include "rewrite/chase.h"
#include "rewrite/contained.h"
#include "rewrite/rewriter.h"
#include "tsl/parser.h"
#include "tsl/validate.h"

namespace tslrw {

size_t AnalysisReport::count(Severity severity) const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == severity) ++n;
  }
  return n;
}

std::string AnalysisReport::ToString() const {
  std::string out;
  for (const Diagnostic& d : diagnostics) out += StrCat(d.ToString(), "\n");
  return out;
}

namespace {

/// Visits \p p and every set-pattern member below it, depth-first;
/// \p visit returns false to stop early. Returns false iff stopped.
template <typename Fn>
bool WalkPattern(const ObjectPattern& p, const Fn& visit) {
  if (!visit(p)) return false;
  if (p.value.is_set()) {
    for (const ObjectPattern& m : p.value.set()) {
      if (!WalkPattern(m, visit)) return false;
    }
  }
  return true;
}

/// The span of the first pattern in \p query (head, then body conditions in
/// order) satisfying \p pred; the query's own span if none does.
template <typename Fn>
SourceSpan LocatePattern(const TslQuery& query, const Fn& pred) {
  SourceSpan found = query.span;
  bool done = !WalkPattern(query.head, [&](const ObjectPattern& p) {
    if (pred(p)) {
      found = p.span;
      return false;
    }
    return true;
  });
  for (const Condition& c : query.body) {
    if (done) break;
    done = !WalkPattern(c.pattern, [&](const ObjectPattern& p) {
      if (pred(p)) {
        found = p.span;
        return false;
      }
      return true;
    });
  }
  return found;
}

/// True for the parser's `AnonLabelN` wildcards (spelled `*` in the text);
/// they are single-use by construction.
bool IsAnonymousVariable(const std::string& name) {
  return StartsWith(name, "AnonLabel");
}

/// Strips a leading "line:column: " (as produced by the lexer's positioned
/// ParseErrors) off \p message into a span.
SourceSpan ExtractSpanPrefix(std::string* message) {
  const std::string& s = *message;
  size_t i = 0;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
  if (i == 0 || i >= s.size() || s[i] != ':') return {};
  size_t j = i + 1;
  while (j < s.size() && std::isdigit(static_cast<unsigned char>(s[j]))) ++j;
  if (j == i + 1 || j >= s.size() || s[j] != ':') return {};
  SourceSpan span{std::stoi(s.substr(0, i)),
                  std::stoi(s.substr(i + 1, j - i - 1))};
  size_t k = j + 1;
  while (k < s.size() && s[k] == ' ') ++k;
  *message = s.substr(k);
  return span;
}

/// Variables plus ground oid terms of a condition — the things a join with
/// another condition can go through.
std::set<Term> JoinKeys(const Condition& condition) {
  std::set<Term> keys;
  condition.pattern.CollectVariables(&keys);
  WalkPattern(condition.pattern, [&](const ObjectPattern& p) {
    if (p.oid.IsGround()) keys.insert(p.oid);
    return true;
  });
  return keys;
}

bool Intersect(const std::set<Term>& a, const std::set<Term>& b) {
  for (const Term& t : a) {
    if (b.count(t) > 0) return true;
  }
  return false;
}

}  // namespace

void Analyzer::Report(std::vector<Diagnostic>* out, DiagCode code,
                      SourceSpan span, const std::string& rule,
                      std::string message) const {
  out->push_back(Diagnostic{code, DiagCodeSeverity(code), span, rule,
                            std::move(message)});
}

void Analyzer::WellFormednessPasses(const TslQuery& query,
                                    std::vector<Diagnostic>* out) const {
  if (Status st = CheckSafety(query); !st.ok()) {
    Report(out, DiagCode::kUnsafeQuery, query.head.span, query.name,
           st.message());
  }
  if (Status st = CheckHeadOids(query); !st.ok()) {
    Report(out, DiagCode::kHeadOidViolation, query.head.span, query.name,
           st.message());
  }
  if (Status st = CheckAcyclicBody(query); !st.ok()) {
    SourceSpan span =
        query.body.empty() ? query.span : query.body.front().pattern.span;
    Report(out, DiagCode::kCyclicPattern, span, query.name, st.message());
  }
  if (Status st = CheckRegexStepPlacement(query); !st.ok()) {
    SourceSpan span = LocatePattern(query, [](const ObjectPattern& p) {
      return p.step != StepKind::kChild;
    });
    for (const Condition& c : query.body) {
      if (c.pattern.step != StepKind::kChild) span = c.pattern.span;
    }
    Report(out, DiagCode::kMisplacedRegexStep, span, query.name,
           st.message());
  }
  // V_O / V_C disjointness (TSL005). Parsed rules cannot violate it
  // (ResolveVariableKinds rejects them), but programmatically assembled
  // rules can.
  std::map<std::string, std::set<VarKind>> kinds;
  std::set<Term> vars = query.HeadVariables();
  for (const Term& v : query.BodyVariables()) vars.insert(v);
  for (const Term& v : vars) kinds[v.var_name()].insert(v.var_kind());
  for (const auto& [name, used_kinds] : kinds) {
    if (used_kinds.size() < 2) continue;
    const std::string& var_name = name;  // no structured-binding capture
    SourceSpan span = LocatePattern(query, [&](const ObjectPattern& p) {
      std::set<Term> pattern_vars;
      p.oid.CollectVariables(&pattern_vars);
      for (const Term& v : pattern_vars) {
        if (v.var_name() == var_name) return true;
      }
      return false;
    });
    Report(out, DiagCode::kVariableSortClash, span, query.name,
           StrCat("variable ", name,
                  " is used both as an object id and as a label/value; "
                  "V_O and V_C must be disjoint"));
  }
}

void Analyzer::UnsatisfiablePass(const TslQuery& query,
                                 std::vector<Diagnostic>* out) const {
  ChaseOptions chase{options_.constraints, options_.constraint_exempt_sources};
  auto chased = ChaseQuery(query, chase);
  if (chased.ok() || !chased.status().IsUnsatisfiable()) return;
  SourceSpan span =
      query.body.empty() ? query.span : query.body.front().pattern.span;
  Report(out, DiagCode::kUnsatisfiableBody, span, query.name,
         StrCat("the body is unsatisfiable: ", chased.status().message()));
}

void Analyzer::RedundantConditionPass(const TslQuery& query,
                                      std::vector<Diagnostic>* out) const {
  if (query.body.size() < 2) return;
  ChaseOptions chase{options_.constraints, options_.constraint_exempt_sources};
  for (size_t i = 0; i < query.body.size(); ++i) {
    TslQuery reduced = query;
    reduced.body.erase(reduced.body.begin() + static_cast<ptrdiff_t>(i));
    if (!CheckSafety(reduced).ok()) continue;  // condition binds head vars
    auto equivalent = AreEquivalent(reduced, query, chase);
    if (!equivalent.ok() || !*equivalent) continue;
    Report(out, DiagCode::kRedundantCondition, query.body[i].pattern.span,
           query.name,
           StrCat("body condition ", i + 1, " (",
                  query.body[i].ToString(),
                  ") is redundant: dropping it leaves an equivalent query; "
                  "redundant conditions inflate the exponential candidate "
                  "search (\\S5.1)"));
  }
}

void Analyzer::CartesianProductPass(const TslQuery& query,
                                    std::vector<Diagnostic>* out) const {
  if (query.body.size() < 2) return;
  std::vector<std::set<Term>> keys;
  keys.reserve(query.body.size());
  for (const Condition& c : query.body) keys.push_back(JoinKeys(c));
  // Grow connected components over the body's join graph, in order.
  std::vector<size_t> component(query.body.size(), 0);
  size_t components = 0;
  for (size_t i = 0; i < query.body.size(); ++i) {
    size_t joined = 0;
    bool found = false;
    for (size_t j = 0; j < i; ++j) {
      if (Intersect(keys[i], keys[j])) {
        joined = component[j];
        found = true;
        break;
      }
    }
    if (!found) {
      component[i] = components++;
      continue;
    }
    component[i] = joined;
    // Merging: conditions i joins may bridge two earlier components.
    for (size_t j = 0; j < i; ++j) {
      if (component[j] != joined && Intersect(keys[i], keys[j])) {
        size_t from = component[j];
        for (size_t k = 0; k <= i; ++k) {
          if (component[k] == from) component[k] = joined;
        }
        --components;
      }
    }
  }
  if (components < 2) return;
  // Report the first condition of every component after the first.
  std::set<size_t> seen{component[0]};
  for (size_t i = 1; i < query.body.size(); ++i) {
    if (!seen.insert(component[i]).second) continue;
    Report(out, DiagCode::kCartesianProduct, query.body[i].pattern.span,
           query.name,
           StrCat("body condition ", i + 1, " (", query.body[i].ToString(),
                  ") shares no variables or ground oids with the preceding "
                  "conditions; the body is a cartesian product of ",
                  components, " independent parts"));
  }
}

void Analyzer::PathStepPass(const TslQuery& query,
                            std::vector<Diagnostic>* out) const {
  for (const Condition& c : query.body) {
    WalkPattern(c.pattern, [&](const ObjectPattern& p) {
      if (p.step == StepKind::kClosure) {
        Report(out, DiagCode::kUnboundedPathStep, p.span, query.name,
               StrCat("closure step `", p.label.ToString(),
                      "+` matches chains of unbounded length; evaluation "
                      "cost grows with graph depth and the rewriting "
                      "pipeline rejects regular path steps (\\S7)"));
      } else if (p.step == StepKind::kDescendant) {
        Report(out, DiagCode::kUnboundedPathStep, p.span, query.name,
               "descendant step `**` matches every proper descendant; "
               "evaluation can touch the whole graph and the rewriting "
               "pipeline rejects regular path steps (\\S7)");
      }
      return true;
    });
  }
}

void Analyzer::SingleUseVariablePass(const TslQuery& query,
                                     std::vector<Diagnostic>* out) const {
  struct Use {
    size_t occurrences = 0;
    SourceSpan span;
  };
  std::map<std::string, Use> uses;
  // Counts every occurrence of every variable in \p t, crediting the
  // enclosing pattern's span.
  auto count_term = [&uses](const Term& t, SourceSpan span) {
    std::vector<const Term*> stack{&t};
    while (!stack.empty()) {
      const Term* top = stack.back();
      stack.pop_back();
      if (top->is_var()) {
        Use& use = uses[top->var_name()];
        if (use.occurrences == 0) use.span = span;
        ++use.occurrences;
      } else if (top->is_func()) {
        for (const Term& a : top->args()) stack.push_back(&a);
      }
    }
  };
  auto count_pattern = [&](const ObjectPattern& pattern) {
    WalkPattern(pattern, [&](const ObjectPattern& p) {
      count_term(p.oid, p.span);
      count_term(p.label, p.span);
      if (p.value.is_term()) count_term(p.value.term(), p.span);
      return true;
    });
  };
  count_pattern(query.head);
  for (const Condition& c : query.body) count_pattern(c.pattern);
  for (const auto& [name, use] : uses) {
    if (use.occurrences != 1 || IsAnonymousVariable(name)) continue;
    Report(out, DiagCode::kSingleUseVariable, use.span, query.name,
           StrCat("variable ", name,
                  " occurs only once; it matches anything (fine as a "
                  "wildcard, suspicious if a join was intended)"));
  }
}

void Analyzer::DeadViewPass(const std::vector<TslQuery>& rules,
                            std::vector<Diagnostic>* out) const {
  // A rule is eligible when the contained-rewriting machinery accepts it.
  auto eligible = [](const TslQuery& rule) {
    return !rule.name.empty() && ValidateQuery(rule).ok() &&
           !UsesRegexSteps(rule);
  };
  RewriteOptions options;
  options.constraints = options_.constraints;
  options.require_total = true;
  options.max_candidates = options_.max_candidates;
  for (size_t i = 0; i < rules.size(); ++i) {
    if (!eligible(rules[i])) continue;
    std::vector<TslQuery> others;
    others.reserve(rules.size() - 1);
    for (size_t j = 0; j < rules.size(); ++j) {
      if (j != i && eligible(rules[j])) others.push_back(rules[j]);
    }
    if (others.empty()) continue;
    auto covered =
        FindMaximallyContainedRewriting(rules[i], others, options);
    if (covered.ok() && covered->truncated) {
      Report(out, DiagCode::kSearchTruncated, rules[i].span, rules[i].name,
             StrCat("dead-view analysis of ", rules[i].name,
                    " examined only the first ", options.max_candidates,
                    " candidate(s); the verdict may be incomplete"));
    }
    if (!covered.ok() || !covered->equivalent) continue;
    std::set<std::string> covering;
    for (const TslQuery& rule : covered->rewriting.rules) {
      for (const Condition& c : rule.body) covering.insert(c.source);
    }
    Report(out, DiagCode::kDeadView, rules[i].span, rules[i].name,
           StrCat("view ", rules[i].name,
                  " is dead: every answer it contributes is already "
                  "available through ",
                  JoinMapped(covering, ", ",
                             [](const std::string& s) { return s; })));
  }
}

AnalysisReport Analyzer::AnalyzeQuery(const TslQuery& query) const {
  std::vector<Diagnostic> diags;
  WellFormednessPasses(query, &diags);
  bool well_formed = diags.empty();
  if (options_.semantic_passes && well_formed && !UsesRegexSteps(query)) {
    size_t before = diags.size();
    UnsatisfiablePass(query, &diags);
    // A redundancy check against an unsatisfiable query proves nothing.
    if (diags.size() == before) RedundantConditionPass(query, &diags);
  }
  CartesianProductPass(query, &diags);
  PathStepPass(query, &diags);
  if (options_.lint_single_use_variables) {
    SingleUseVariablePass(query, &diags);
  }
  SortDiagnostics(&diags);
  return AnalysisReport{std::move(diags)};
}

AnalysisReport Analyzer::AnalyzeRules(
    const std::vector<TslQuery>& rules) const {
  AnalysisReport report;
  for (const TslQuery& rule : rules) {
    AnalysisReport one = AnalyzeQuery(rule);
    report.diagnostics.insert(report.diagnostics.end(),
                              one.diagnostics.begin(), one.diagnostics.end());
  }
  if (options_.semantic_passes && options_.detect_dead_views) {
    DeadViewPass(rules, &report.diagnostics);
  }
  // Presentation order must not depend on the order the rules arrived in
  // (callers iterate maps, vectors, capability sets, ...).
  SortDiagnostics(&report.diagnostics);
  return report;
}

AnalysisReport Analyzer::AnalyzeProgramText(std::string_view text) const {
  auto rules = ParseTslProgram(text);
  if (!rules.ok()) {
    std::string message = rules.status().message();
    SourceSpan span = ExtractSpanPrefix(&message);
    AnalysisReport report;
    Report(&report.diagnostics, DiagCode::kParseError, span, /*rule=*/"",
           std::move(message));
    return report;
  }
  return AnalyzeRules(*rules);
}

}  // namespace tslrw
