#ifndef TSLRW_ANALYSIS_ANALYZER_H_
#define TSLRW_ANALYSIS_ANALYZER_H_

#include <cstddef>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostic.h"
#include "constraints/inference.h"
#include "tsl/ast.h"

namespace tslrw {

/// \brief Knobs for the Analyzer.
struct AnalyzerOptions {
  /// DTD-derived constraints on the source data; enables the \S3.3 chase
  /// rules inside the unsatisfiability and redundancy passes.
  const StructuralConstraints* constraints = nullptr;
  /// Sources the constraint-derived chase rules must ignore (view names,
  /// exactly as in ChaseOptions).
  std::set<std::string> constraint_exempt_sources;
  /// Run the chase/containment-backed passes (TSL006 unsatisfiable body,
  /// TSL101 redundant condition, TSL104 dead view). These run the paper's
  /// own machinery and cost more than the syntactic passes; turn them off
  /// for editor-latency linting.
  bool semantic_passes = true;
  /// Run the cross-rule TSL104 pass in AnalyzeRules (each rule checked for
  /// being fully covered by the other rules, via the maximally-contained
  /// rewriting search).
  bool detect_dead_views = true;
  /// Emit TSL105 notes for variables used exactly once.
  bool lint_single_use_variables = true;
  /// Candidate budget forwarded to the rewriting searches the semantic
  /// passes run (TSL104). When a search is cut short by this cap its
  /// verdict may be incomplete, which the analyzer reports as TSL106.
  size_t max_candidates = 1000000;
};

/// \brief The outcome of analyzing one rule, a rule set, or program text.
struct AnalysisReport {
  std::vector<Diagnostic> diagnostics;

  bool has_errors() const { return count(Severity::kError) > 0; }
  size_t count(Severity severity) const;

  /// One rendered line per diagnostic (no source snippets).
  std::string ToString() const;
};

/// \brief Rule-level static analyzer for TSL programs.
///
/// The analyzer layers on the existing machinery instead of duplicating
/// it: the `validate.cc` well-formedness checks surface as error
/// diagnostics with source spans (TSL001-TSL004), the chase (\S3.2/3.3)
/// backs unsatisfiable-body detection (TSL006), the \S4 equivalence test
/// backs redundant-condition detection (TSL101), and the
/// maximally-contained rewriting search backs dead-view detection
/// (TSL104). The motivation is \S5.1: rewriting is exponential in the
/// query size, so rule pathologies — redundant subgoals, cartesian
/// products, unbounded path steps, dead views — should be caught before
/// rewriting ever runs.
class Analyzer {
 public:
  explicit Analyzer(AnalyzerOptions options = {})
      : options_(std::move(options)) {}

  /// Every per-rule pass over one query or view definition.
  AnalysisReport AnalyzeQuery(const TslQuery& query) const;

  /// Per-rule passes over each rule, then the cross-rule dead-view pass
  /// (each rule tested for being fully covered by the others). This is the
  /// entry point the mediator uses on its capability views.
  AnalysisReport AnalyzeRules(const std::vector<TslQuery>& rules) const;

  /// Parses \p text as a TSL program and analyzes it; parse failures are
  /// reported as TSL000 diagnostics (with the lexer's position) rather
  /// than a failed Status, so drivers can always render a report.
  AnalysisReport AnalyzeProgramText(std::string_view text) const;

  const AnalyzerOptions& options() const { return options_; }

 private:
  /// Appends a diagnostic, deriving the severity from the code.
  void Report(std::vector<Diagnostic>* out, DiagCode code, SourceSpan span,
              const std::string& rule, std::string message) const;

  void WellFormednessPasses(const TslQuery& query,
                            std::vector<Diagnostic>* out) const;
  void UnsatisfiablePass(const TslQuery& query,
                         std::vector<Diagnostic>* out) const;
  void RedundantConditionPass(const TslQuery& query,
                              std::vector<Diagnostic>* out) const;
  void CartesianProductPass(const TslQuery& query,
                            std::vector<Diagnostic>* out) const;
  void PathStepPass(const TslQuery& query,
                    std::vector<Diagnostic>* out) const;
  void SingleUseVariablePass(const TslQuery& query,
                             std::vector<Diagnostic>* out) const;
  void DeadViewPass(const std::vector<TslQuery>& rules,
                    std::vector<Diagnostic>* out) const;

  AnalyzerOptions options_;
};

}  // namespace tslrw

#endif  // TSLRW_ANALYSIS_ANALYZER_H_
