#include "analysis/diagnostic.h"

#include <algorithm>

#include "common/string_util.h"

namespace tslrw {

std::string_view SeverityToString(Severity severity) {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "diagnostic";
}

std::string_view DiagCodeToString(DiagCode code) {
  switch (code) {
    case DiagCode::kParseError: return "TSL000";
    case DiagCode::kUnsafeQuery: return "TSL001";
    case DiagCode::kHeadOidViolation: return "TSL002";
    case DiagCode::kCyclicPattern: return "TSL003";
    case DiagCode::kMisplacedRegexStep: return "TSL004";
    case DiagCode::kVariableSortClash: return "TSL005";
    case DiagCode::kUnsatisfiableBody: return "TSL006";
    case DiagCode::kRedundantCondition: return "TSL101";
    case DiagCode::kCartesianProduct: return "TSL102";
    case DiagCode::kUnboundedPathStep: return "TSL103";
    case DiagCode::kDeadView: return "TSL104";
    case DiagCode::kSingleUseVariable: return "TSL105";
    case DiagCode::kSearchTruncated: return "TSL106";
    case DiagCode::kViewSubsumed: return "TSL200";
    case DiagCode::kDuplicateView: return "TSL201";
    case DiagCode::kViewUnsatisfiable: return "TSL202";
    case DiagCode::kUnreachableCapability: return "TSL203";
    case DiagCode::kChaseBudgetExceeded: return "TSL204";
  }
  return "TSL???";
}

Severity DiagCodeSeverity(DiagCode code) {
  switch (code) {
    case DiagCode::kParseError:
    case DiagCode::kUnsafeQuery:
    case DiagCode::kHeadOidViolation:
    case DiagCode::kCyclicPattern:
    case DiagCode::kMisplacedRegexStep:
    case DiagCode::kVariableSortClash:
    case DiagCode::kUnsatisfiableBody:
    case DiagCode::kViewUnsatisfiable:
    case DiagCode::kUnreachableCapability:
      return Severity::kError;
    case DiagCode::kRedundantCondition:
    case DiagCode::kCartesianProduct:
    case DiagCode::kUnboundedPathStep:
    case DiagCode::kDeadView:
    case DiagCode::kSearchTruncated:
    case DiagCode::kViewSubsumed:
    case DiagCode::kDuplicateView:
    case DiagCode::kChaseBudgetExceeded:
      return Severity::kWarning;
    case DiagCode::kSingleUseVariable:
      return Severity::kNote;
  }
  return Severity::kError;
}

std::string Diagnostic::ToString() const {
  std::string out;
  if (!rule.empty()) out += StrCat(rule, ":");
  if (span.valid()) out += StrCat(span.ToString(), ":");
  if (!out.empty()) out += " ";
  return StrCat(out, SeverityToString(severity), ": ", message, " [",
                DiagCodeToString(code), "]");
}

namespace {

/// The \p line-th (1-based) line of \p source, without its newline.
std::string_view SourceLine(std::string_view source, int line) {
  size_t start = 0;
  for (int i = 1; i < line; ++i) {
    size_t eol = source.find('\n', start);
    if (eol == std::string_view::npos) return {};
    start = eol + 1;
  }
  size_t eol = source.find('\n', start);
  return source.substr(
      start, eol == std::string_view::npos ? source.size() - start
                                           : eol - start);
}

}  // namespace

std::string RenderDiagnostic(const Diagnostic& diagnostic,
                             std::string_view source) {
  std::string out = StrCat(diagnostic.ToString(), "\n");
  if (source.empty() || !diagnostic.span.valid()) return out;
  std::string_view line = SourceLine(source, diagnostic.span.line);
  if (line.empty() &&
      static_cast<size_t>(diagnostic.span.column) > line.size() + 1) {
    return out;  // span does not point into this text
  }
  std::string line_no = StrCat(diagnostic.span.line);
  std::string gutter(line_no.size(), ' ');
  std::string caret_pad(
      diagnostic.span.column > 0
          ? static_cast<size_t>(diagnostic.span.column - 1)
          : 0,
      ' ');
  out += StrCat("  ", line_no, " | ", line, "\n");
  out += StrCat("  ", gutter, " | ", caret_pad, "^\n");
  return out;
}

std::string RenderDiagnostics(const std::vector<Diagnostic>& diagnostics,
                              std::string_view source) {
  std::string out;
  for (const Diagnostic& d : diagnostics) out += RenderDiagnostic(d, source);
  return out;
}

void SortDiagnostics(std::vector<Diagnostic>* diagnostics) {
  std::stable_sort(
      diagnostics->begin(), diagnostics->end(),
      [](const Diagnostic& a, const Diagnostic& b) {
        if (a.span.line != b.span.line) return a.span.line < b.span.line;
        if (a.span.column != b.span.column) {
          return a.span.column < b.span.column;
        }
        if (a.code != b.code) {
          return static_cast<int>(a.code) < static_cast<int>(b.code);
        }
        if (a.rule != b.rule) return a.rule < b.rule;
        return a.message < b.message;
      });
}

}  // namespace tslrw
