#ifndef TSLRW_ANALYSIS_DIAGNOSTIC_H_
#define TSLRW_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/source_span.h"

namespace tslrw {

/// \brief How serious a diagnostic is.
///
/// Errors are rules the rewriting pipeline would reject (the `validate.cc`
/// well-formedness checks, plus unsatisfiable bodies); warnings are legal
/// rules with pathologies that blow up the exponential rewriter (\S5.1) or
/// the evaluator; notes are style lints.
enum class Severity : uint8_t {
  kError,
  kWarning,
  kNote,
};

std::string_view SeverityToString(Severity severity);

/// \brief Stable diagnostic codes, catalogued with triggering examples and
/// fixes in docs/DIAGNOSTICS.md. Codes are never renumbered; retired codes
/// are not reused.
enum class DiagCode : uint8_t {
  // --- errors: the pipeline rejects the rule -------------------------------
  kParseError = 0,          ///< TSL000: the text is not a TSL rule
  kUnsafeQuery = 1,         ///< TSL001: head variable missing from the body
  kHeadOidViolation = 2,    ///< TSL002: head oid discipline (\S2)
  kCyclicPattern = 3,       ///< TSL003: cyclic body object pattern
  kMisplacedRegexStep = 4,  ///< TSL004: `l+`/`**` in a head or at top level
  kVariableSortClash = 5,   ///< TSL005: one name in both V_O and V_C
  kUnsatisfiableBody = 6,   ///< TSL006: chase derives conflicting constants
  // --- warnings / notes: legal but costly or suspicious --------------------
  kRedundantCondition = 101,  ///< TSL101: droppable body condition
  kCartesianProduct = 102,    ///< TSL102: disconnected body join graph
  kUnboundedPathStep = 103,   ///< TSL103: `l+`/`**` walks unbounded paths
  kDeadView = 104,            ///< TSL104: view adds nothing over the others
  kSingleUseVariable = 105,   ///< TSL105: variable used exactly once
  kSearchTruncated = 106,     ///< TSL106: a semantic pass hit its search cap
  // --- cross-view findings of the whole-catalog compiler (src/catalog) -----
  kViewSubsumed = 200,          ///< TSL200: view contained in another view
  kDuplicateView = 201,         ///< TSL201: α-equivalent duplicate views
  kViewUnsatisfiable = 202,     ///< TSL202: view empty under the constraints
  kUnreachableCapability = 203, ///< TSL203: binding pattern never satisfiable
  kChaseBudgetExceeded = 204,   ///< TSL204: view too large to chase offline
};

/// "TSL001"-style stable code string.
std::string_view DiagCodeToString(DiagCode code);

/// The severity every diagnostic with this code carries.
Severity DiagCodeSeverity(DiagCode code);

/// \brief One analyzer finding: a coded, positioned message about a rule.
struct Diagnostic {
  DiagCode code;
  Severity severity;
  /// Position in the text the rule was parsed from; invalid when the rule
  /// was assembled programmatically.
  SourceSpan span;
  /// Name of the rule the finding is about; may be empty.
  std::string rule;
  std::string message;

  /// "Q3:1:19: warning: cartesian product ... [TSL102]".
  std::string ToString() const;
};

/// \brief Renders \p diagnostic; when \p source (the text the rule was
/// parsed from) is supplied and the span is valid, appends a caret snippet:
///
/// ```
/// Q:2:5: warning: body conditions 1 and 2 share no variables [TSL102]
///   2 |     <Q r W>@db
///     |     ^
/// ```
std::string RenderDiagnostic(const Diagnostic& diagnostic,
                             std::string_view source = {});

/// Renders every diagnostic in order (the analyzer and the catalog
/// compiler sort their reports with SortDiagnostics before returning).
std::string RenderDiagnostics(const std::vector<Diagnostic>& diagnostics,
                              std::string_view source = {});

/// \brief Sorts \p diagnostics into the stable presentation order every
/// producer emits: by source position (line, then column), then numeric
/// code, then rule name, then message. Programmatic rules (invalid spans
/// render as line 0) sort before positioned ones; the sort is stable, so
/// equal keys keep their production order. This makes diagnostic output a
/// pure function of the rule set, independent of pass scheduling or the
/// iteration order of whatever container delivered the rules.
void SortDiagnostics(std::vector<Diagnostic>* diagnostics);

}  // namespace tslrw

#endif  // TSLRW_ANALYSIS_DIAGNOSTIC_H_
