#ifndef TSLRW_CATALOG_COMPILER_H_
#define TSLRW_CATALOG_COMPILER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/diagnostic.h"
#include "common/result.h"
#include "constraints/inference.h"
#include "mediator/capability.h"
#include "rewrite/view_index.h"
#include "tsl/ast.h"

namespace tslrw {

class MetricRegistry;
class Tracer;

/// \brief Knobs for the whole-catalog compiler.
struct CatalogCompileOptions {
  /// Chase budget: a view whose normal-form body exceeds this many path
  /// conditions is not chased offline (TSL204); it is always admitted by
  /// the index and chased per query, exactly as the full scan would.
  size_t max_chase_conditions = 256;
  /// Run the pairwise-containment pass that derives the subsumption
  /// lattice (TSL200) and the α-duplicate grouping (TSL201).
  bool compute_lattice = true;
  /// Budget on containment tests (the pass is quadratic in #views before
  /// the signature prefilter); when hit, lattice_truncated() is set and
  /// the remaining pairs are skipped.
  size_t max_containment_pairs = 10000;
  /// Also run the per-rule Analyzer passes (TSL0xx/1xx) over every view
  /// and fold their diagnostics into the compile report, so `tslrw_compile`
  /// is a superset of `tslrw_analyze` over the catalog. The cross-rule
  /// dead-view pass stays off — TSL200/201 subsume it with exact evidence.
  bool analyze_rules = true;
  Tracer* tracer = nullptr;     ///< optional `catalog.compile` span tree
  MetricRegistry* metrics = nullptr;  ///< optional `catalog.*` counters
};

/// How the compiler classified one view.
enum class CompiledViewState : uint8_t {
  /// Chased offline; stored chase outcome + structural signature serve
  /// online probes.
  kIndexed = 0,
  /// Not chased offline (TSL204 budget); always admitted, chased online.
  kAlwaysScan = 1,
  /// Chase proved the view empty under the constraints (TSL202); never
  /// admitted — the full scan drops such views identically.
  kUnsatisfiable = 2,
  /// Failed validation (unnamed, ill-formed, or regex-stepped); the
  /// catalog is unservable and every probe falls back to the full scan.
  kInvalid = 3,
};

/// \brief One view's compiled record: identity, classification, offline
/// chase outcome, and structural signature. Everything here serializes to
/// the index file byte-for-byte (catalog/index_file.h).
struct CompiledViewEntry {
  std::string name;
  /// The source whose interface exports the view (reporting only).
  std::string source;
  CompiledViewState state = CompiledViewState::kIndexed;
  /// CanonicalizeQuery(raw view).fingerprint — α-invariant identity, used
  /// by ValidateAgainst and the TSL201 duplicate grouping.
  uint64_t raw_fingerprint = 0;
  /// CanonicalizeQuery(offline-chased view).fingerprint; 0 unless kIndexed.
  uint64_t chased_fingerprint = 0;
  /// ToString of the offline-chased view, reparsed on load; empty unless
  /// kIndexed.
  std::string chased_text;
  /// RequiredFeatures of the chased body (sorted); empty unless kIndexed.
  std::vector<std::string> required;
  /// The catalog-wide rarest feature in `required` — the one bucket this
  /// view is filed under in the inverted index. Empty unless kIndexed.
  std::string anchor;
  /// The capability's binding pattern (sorted), kept for TSL203 and
  /// reporting.
  std::vector<std::string> bound_variables;
};

/// One subsumption-lattice edge: every answer `subsumed` contributes is
/// also produced by `subsuming` (containment of the chased views, \S4
/// one-sided test). `equivalent` marks edges present in both directions.
struct CatalogLatticeEdge {
  uint32_t subsumed = 0;
  uint32_t subsuming = 0;
  bool equivalent = false;
};

/// \brief The compiled catalog: per-view entries, the subsumption lattice,
/// the TSL2xx report, and the anchor-bucket inverted index that answers
/// online probes. Implements ViewSetIndex, so a Mediator or QueryServer
/// can consult it during candidate enumeration (docs/CATALOG.md).
///
/// Immutable after Assemble; safe to share across threads.
class CompiledCatalog : public ViewSetIndex {
 public:
  /// Builds the in-memory index from its serializable parts: reparses
  /// stored chase outcomes, rebuilds the anchor buckets, and computes the
  /// catalog fingerprint. Both CompileCatalog and the index-file loader
  /// funnel through here, which is what makes the round trip exact.
  static Result<std::shared_ptr<const CompiledCatalog>> Assemble(
      std::vector<CompiledViewEntry> entries,
      std::vector<CatalogLatticeEdge> lattice, bool lattice_truncated,
      std::vector<Diagnostic> diagnostics, uint64_t constraints_fingerprint);

  // --- ViewSetIndex ------------------------------------------------------
  bool CoversViews(const std::vector<TslQuery>& views) const override;
  Result<std::optional<std::vector<TslQuery>>> ChasedViewsFor(
      const TslQuery& chased_query, const std::vector<TslQuery>& views,
      const ChaseOptions& chase_options,
      ViewProbeOutcome* outcome) const override;
  Status ValidateAgainst(
      const std::vector<TslQuery>& views,
      const StructuralConstraints* constraints) const override;
  uint64_t catalog_fingerprint() const override {
    return catalog_fingerprint_;
  }

  // --- compiled artifacts ------------------------------------------------
  const std::vector<CompiledViewEntry>& entries() const { return entries_; }
  const std::vector<CatalogLatticeEdge>& lattice() const { return lattice_; }
  bool lattice_truncated() const { return lattice_truncated_; }
  /// The TSL2xx findings (plus per-rule TSL0xx/1xx when the compile ran
  /// the analyzer), in SortDiagnostics order.
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  uint64_t constraints_fingerprint() const { return constraints_fingerprint_; }
  /// False when some view is kInvalid: probes decline (full scan) because
  /// the signatures of an ill-formed catalog prove nothing.
  bool servable() const { return servable_; }
  size_t error_count() const;

  /// "compiled 12 view(s): 10 indexed, 1 unsatisfiable, ..." one-liner.
  std::string Summary() const;

 private:
  CompiledCatalog() = default;

  std::vector<CompiledViewEntry> entries_;
  /// Parsed chased_text, parallel to entries_ (default TslQuery for
  /// non-indexed entries).
  std::vector<TslQuery> chased_views_;
  std::vector<CatalogLatticeEdge> lattice_;
  std::vector<Diagnostic> diagnostics_;
  /// anchor feature -> ordinals of kIndexed views filed under it.
  std::unordered_map<std::string, std::vector<uint32_t>> anchor_buckets_;
  /// Ordinals admitted to every probe, ascending: kAlwaysScan entries plus
  /// kIndexed entries with no required features.
  std::vector<uint32_t> always_admit_;
  /// view name -> ordinal.
  std::unordered_map<std::string, uint32_t> by_name_;
  uint64_t catalog_fingerprint_ = 0;
  uint64_t constraints_fingerprint_ = 0;
  bool lattice_truncated_ = false;
  bool servable_ = true;
};

/// \brief Stable fingerprint of a constraint set (the DTD dump, which is
/// deterministic); distinguishes "no constraints" from every real DTD.
uint64_t ConstraintsFingerprint(const StructuralConstraints* constraints);

/// \brief The whole-catalog static analyzer: chases every view once,
/// computes structural signatures, derives the subsumption lattice, and
/// emits the TSL2xx cross-view diagnostics. Fails only on malformed
/// descriptions (duplicate names, foreign sources) or hard chase errors;
/// per-view findings — including error-level ones — land in
/// diagnostics() so a front end can render all of them.
Result<std::shared_ptr<const CompiledCatalog>> CompileCatalog(
    const std::vector<SourceDescription>& sources,
    const StructuralConstraints* constraints,
    const CatalogCompileOptions& options = {});

/// Convenience: wraps bare \p views into single-capability
/// SourceDescriptions grouped by body source (what the shell's `compile`
/// command and the CLI do when no capabilities were declared).
std::vector<SourceDescription> DescribeViews(
    const std::vector<TslQuery>& views);

}  // namespace tslrw

#endif  // TSLRW_CATALOG_COMPILER_H_
