#include "catalog/diff.h"

#include <map>
#include <set>

#include "catalog/compiler.h"
#include "common/string_util.h"

namespace tslrw {

namespace {

/// name -> folded identity fingerprint over every capability in \p sources.
std::map<std::string, uint64_t> FingerprintByName(
    const std::vector<SourceDescription>& sources) {
  std::map<std::string, uint64_t> out;
  for (const SourceDescription& source : sources) {
    for (const Capability& cap : source.capabilities) {
      out[cap.view.name] ^= ViewIdentityFingerprint(cap);
    }
  }
  return out;
}

/// Every source name some view body ranges over, across \p sources.
void CollectBodySources(const std::vector<SourceDescription>& sources,
                        std::set<std::string>* out) {
  for (const SourceDescription& source : sources) {
    for (const Capability& cap : source.capabilities) {
      for (const Condition& c : cap.view.body) out->insert(c.source);
    }
  }
}

}  // namespace

std::vector<std::string> CatalogDelta::TouchedNames() const {
  std::set<std::string> names;
  for (const CatalogDeltaEntry& e : added) names.insert(e.name);
  for (const CatalogDeltaEntry& e : removed) names.insert(e.name);
  for (const CatalogDeltaEntry& e : changed) names.insert(e.name);
  return std::vector<std::string>(names.begin(), names.end());
}

std::string CatalogDelta::ToString() const {
  return StrCat("+", added.size(), " -", removed.size(), " ~", changed.size(),
                " views, constraints ",
                constraints_changed ? "changed" : "unchanged",
                exempt_hazard ? ", exempt hazard" : "");
}

CatalogDelta ComputeCatalogDelta(
    const std::vector<SourceDescription>& old_sources,
    const StructuralConstraints* old_constraints,
    const std::vector<SourceDescription>& new_sources,
    const StructuralConstraints* new_constraints) {
  CatalogDelta delta;
  const std::map<std::string, uint64_t> old_fps =
      FingerprintByName(old_sources);
  const std::map<std::string, uint64_t> new_fps =
      FingerprintByName(new_sources);
  for (const auto& [name, fp] : old_fps) {
    auto it = new_fps.find(name);
    if (it == new_fps.end()) {
      delta.removed.push_back({name, fp, 0});
    } else if (it->second != fp) {
      delta.changed.push_back({name, fp, it->second});
    }
  }
  for (const auto& [name, fp] : new_fps) {
    if (old_fps.count(name) == 0) delta.added.push_back({name, 0, fp});
  }
  delta.constraints_changed = ConstraintsFingerprint(old_constraints) !=
                              ConstraintsFingerprint(new_constraints);
  // A changed view keeps its name, so it cannot alter which names are
  // exempt — only additions and removals can.
  std::set<std::string> body_sources;
  CollectBodySources(old_sources, &body_sources);
  CollectBodySources(new_sources, &body_sources);
  for (const CatalogDeltaEntry& e : delta.added) {
    if (body_sources.count(e.name) > 0) delta.exempt_hazard = true;
  }
  for (const CatalogDeltaEntry& e : delta.removed) {
    if (body_sources.count(e.name) > 0) delta.exempt_hazard = true;
  }
  return delta;
}

}  // namespace tslrw
