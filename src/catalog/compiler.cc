#include "catalog/compiler.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "analysis/analyzer.h"
#include "catalog/signature.h"
#include "common/string_util.h"
#include "equiv/equivalence.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rewrite/chase.h"
#include "tsl/canonical.h"
#include "tsl/normal_form.h"
#include "tsl/parser.h"
#include "tsl/validate.h"

namespace tslrw {

namespace {

Diagnostic MakeDiag(DiagCode code, SourceSpan span, std::string rule,
                    std::string message) {
  Diagnostic d;
  d.code = code;
  d.severity = DiagCodeSeverity(code);
  d.span = span;
  d.rule = std::move(rule);
  d.message = std::move(message);
  return d;
}

/// \p required is sorted; \p provided is a set. True iff every required
/// feature is provided.
bool FeaturesSubset(const std::vector<std::string>& required,
                    const std::set<std::string>& provided) {
  for (const std::string& r : required) {
    if (provided.count(r) == 0) return false;
  }
  return true;
}

}  // namespace

uint64_t ConstraintsFingerprint(const StructuralConstraints* constraints) {
  // The DTD dump is deterministic (sorted element maps), so it doubles as
  // the constraint set's identity.
  if (constraints == nullptr) return StableFingerprint("no-constraints");
  return StableFingerprint(constraints->dtd().ToString());
}

std::vector<SourceDescription> DescribeViews(
    const std::vector<TslQuery>& views) {
  std::vector<SourceDescription> out;
  std::map<std::string, size_t> by_source;
  for (const TslQuery& view : views) {
    // ValidateDescriptions requires a view to range over its description's
    // source only, so the first body condition names the right group; a
    // bodyless view gets a group of its own.
    const std::string source =
        view.body.empty() ? view.name : view.body.front().source;
    auto [it, inserted] = by_source.emplace(source, out.size());
    if (inserted) out.push_back(SourceDescription{source, {}});
    out[it->second].capabilities.push_back(Capability{view, {}});
  }
  return out;
}

Result<std::shared_ptr<const CompiledCatalog>> CompiledCatalog::Assemble(
    std::vector<CompiledViewEntry> entries,
    std::vector<CatalogLatticeEdge> lattice, bool lattice_truncated,
    std::vector<Diagnostic> diagnostics, uint64_t constraints_fingerprint) {
  std::shared_ptr<CompiledCatalog> catalog(new CompiledCatalog());
  catalog->entries_ = std::move(entries);
  catalog->lattice_ = std::move(lattice);
  catalog->lattice_truncated_ = lattice_truncated;
  catalog->constraints_fingerprint_ = constraints_fingerprint;
  SortDiagnostics(&diagnostics);
  catalog->diagnostics_ = std::move(diagnostics);

  const size_t n = catalog->entries_.size();
  catalog->chased_views_.resize(n);
  // The fingerprint covers what ValidateAgainst checks: the view identities
  // (name + α-invariant definition + binding pattern, in order) and the
  // constraints. Two catalogs agreeing here are interchangeable indexes.
  std::string identity = StrCat("tslrw-catalog:", constraints_fingerprint);
  for (size_t i = 0; i < n; ++i) {
    CompiledViewEntry& e = catalog->entries_[i];
    identity +=
        StrCat("|", e.name, ";", e.raw_fingerprint, ";",
               Join(e.bound_variables, ","));
    if (e.state == CompiledViewState::kInvalid) catalog->servable_ = false;
    if (!e.name.empty() &&
        !catalog->by_name_.emplace(e.name, static_cast<uint32_t>(i)).second) {
      return Status::DataLoss(
          StrCat("compiled catalog holds view ", e.name, " twice"));
    }
    switch (e.state) {
      case CompiledViewState::kIndexed: {
        Result<TslQuery> parsed = ParseTslQuery(e.chased_text, e.name);
        if (!parsed.ok()) {
          return Status::DataLoss(
              StrCat("stored chase outcome of view ", e.name,
                     " does not parse: ", parsed.status().message()));
        }
        catalog->chased_views_[i] = std::move(parsed).value();
        if (e.anchor.empty()) {
          // No required features: the view maps into anything (e.g. an
          // empty body), so every probe must admit it.
          catalog->always_admit_.push_back(static_cast<uint32_t>(i));
        } else if (!std::binary_search(e.required.begin(), e.required.end(),
                                       e.anchor)) {
          return Status::DataLoss(
              StrCat("anchor of view ", e.name,
                     " is not one of its required features"));
        } else {
          catalog->anchor_buckets_[e.anchor].push_back(
              static_cast<uint32_t>(i));
        }
        break;
      }
      case CompiledViewState::kAlwaysScan:
        catalog->always_admit_.push_back(static_cast<uint32_t>(i));
        break;
      case CompiledViewState::kUnsatisfiable:
      case CompiledViewState::kInvalid:
        break;
    }
  }
  for (const CatalogLatticeEdge& edge : catalog->lattice_) {
    if (edge.subsumed >= n || edge.subsuming >= n) {
      return Status::DataLoss("lattice edge names a view ordinal outside the "
                              "catalog");
    }
  }
  catalog->catalog_fingerprint_ = StableFingerprint(identity);
  return std::shared_ptr<const CompiledCatalog>(std::move(catalog));
}

bool CompiledCatalog::CoversViews(const std::vector<TslQuery>& views) const {
  if (!servable_ || views.size() != entries_.size()) return false;
  for (size_t i = 0; i < views.size(); ++i) {
    if (views[i].name != entries_[i].name) return false;
  }
  return true;
}

Result<std::optional<std::vector<TslQuery>>> CompiledCatalog::ChasedViewsFor(
    const TslQuery& chased_query, const std::vector<TslQuery>& views,
    const ChaseOptions& chase_options, ViewProbeOutcome* outcome) const {
  if (!CoversViews(views)) return std::optional<std::vector<TslQuery>>();
  TSLRW_ASSIGN_OR_RETURN(QueryFeatureSet features,
                         ProvidedFeatures(chased_query));

  std::vector<char> admit(entries_.size(), 0);
  for (uint32_t o : always_admit_) admit[o] = 1;
  // Bucket probe: a view can have a mapping into the query only if all of
  // its required features are provided, so checking the buckets of the
  // provided features alone loses nothing — a view in an unprobed bucket is
  // missing its anchor feature.
  for (const std::string& f : features.provided) {
    auto it = anchor_buckets_.find(f);
    if (it == anchor_buckets_.end()) continue;
    for (uint32_t o : it->second) {
      if (!admit[o] && FeaturesSubset(entries_[o].required, features.provided)) {
        admit[o] = 1;
      }
    }
  }
  // Force-include pass: composition resolves view names appearing as body
  // sources from the view list we return, so any view the query names — or
  // that an admitted view's own source names, transitively — must stay in
  // the list even with no mapping (it contributes no candidate atoms either
  // way, so admitting it is byte-neutral; dropping it would change what
  // composition unfolds). Unsatisfiable views stay out: the full scan
  // drops them before composition too.
  std::vector<uint32_t> work;
  std::vector<char> visited(entries_.size(), 0);
  for (const std::string& s : features.sources) {
    auto it = by_name_.find(s);
    if (it != by_name_.end()) work.push_back(it->second);
  }
  for (uint32_t o = 0; o < entries_.size(); ++o) {
    if (admit[o]) work.push_back(o);
  }
  while (!work.empty()) {
    const uint32_t o = work.back();
    work.pop_back();
    if (visited[o]) continue;
    visited[o] = 1;
    if (entries_[o].state == CompiledViewState::kIndexed) admit[o] = 1;
    auto it = by_name_.find(entries_[o].source);
    if (it != by_name_.end()) work.push_back(it->second);
  }

  std::vector<TslQuery> result;
  size_t skipped = 0;
  for (uint32_t o = 0; o < entries_.size(); ++o) {
    if (admit[o] == 0) {
      // Signature-pruned (kIndexed) or proven empty offline
      // (kUnsatisfiable): the full scan would have found no mapping /
      // dropped the view, so skipping is exact.
      ++skipped;
      continue;
    }
    if (entries_[o].state == CompiledViewState::kIndexed) {
      result.push_back(chased_views_[o]);
    } else {
      // kAlwaysScan: chase per query, exactly as the full scan does. The
      // options are the compile-time options by the ValidateAgainst
      // contract, so errors and unsatisfiability surface identically.
      Result<TslQuery> cv = ChaseQuery(views[o], chase_options);
      if (!cv.ok()) {
        if (cv.status().IsUnsatisfiable()) {
          ++skipped;
          continue;
        }
        return cv.status();
      }
      result.push_back(std::move(cv).value());
    }
  }
  if (outcome != nullptr) {
    outcome->admitted = result.size();
    outcome->skipped = skipped;
  }
  return std::optional<std::vector<TslQuery>>(std::move(result));
}

Status CompiledCatalog::ValidateAgainst(
    const std::vector<TslQuery>& views,
    const StructuralConstraints* constraints) const {
  if (!servable_) {
    return Status::InvalidArgument(
        "compiled catalog is unservable: a view failed validation at "
        "compile time");
  }
  if (views.size() != entries_.size()) {
    return Status::InvalidArgument(
        StrCat("catalog index was compiled for ", entries_.size(),
               " view(s) but the mediator serves ", views.size()));
  }
  for (size_t i = 0; i < views.size(); ++i) {
    if (views[i].name != entries_[i].name) {
      return Status::InvalidArgument(
          StrCat("catalog index view ", i, " is ", entries_[i].name,
                 " but the mediator serves ", views[i].name));
    }
    if (CanonicalizeQuery(views[i]).fingerprint !=
        entries_[i].raw_fingerprint) {
      return Status::InvalidArgument(
          StrCat("definition of view ", views[i].name,
                 " changed since the index was compiled"));
    }
  }
  if (ConstraintsFingerprint(constraints) != constraints_fingerprint_) {
    return Status::InvalidArgument(
        "catalog index was compiled under different structural constraints");
  }
  return Status::OK();
}

size_t CompiledCatalog::error_count() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

std::string CompiledCatalog::Summary() const {
  size_t indexed = 0, always = 0, unsat = 0, invalid = 0;
  for (const CompiledViewEntry& e : entries_) {
    switch (e.state) {
      case CompiledViewState::kIndexed: ++indexed; break;
      case CompiledViewState::kAlwaysScan: ++always; break;
      case CompiledViewState::kUnsatisfiable: ++unsat; break;
      case CompiledViewState::kInvalid: ++invalid; break;
    }
  }
  size_t errors = 0, warnings = 0, notes = 0;
  for (const Diagnostic& d : diagnostics_) {
    switch (d.severity) {
      case Severity::kError: ++errors; break;
      case Severity::kWarning: ++warnings; break;
      case Severity::kNote: ++notes; break;
    }
  }
  return StrCat("compiled ", entries_.size(), " view(s): ", indexed,
                " indexed, ", always, " always-scan, ", unsat,
                " unsatisfiable, ", invalid, " invalid; lattice: ",
                lattice_.size(), lattice_truncated_ ? " edge(s), truncated"
                                                    : " edge(s)",
                "; ", errors, " error(s), ", warnings, " warning(s), ", notes,
                " note(s)");
}

Result<std::shared_ptr<const CompiledCatalog>> CompileCatalog(
    const std::vector<SourceDescription>& sources,
    const StructuralConstraints* constraints,
    const CatalogCompileOptions& options) {
  ScopedSpan compile_span(options.tracer, "catalog.compile");
  CountIf(options.metrics, "catalog.compiles");
  TSLRW_RETURN_NOT_OK(ValidateDescriptions(sources));

  std::vector<const Capability*> caps;
  std::vector<std::string> cap_sources;
  for (const SourceDescription& sd : sources) {
    for (const Capability& cap : sd.capabilities) {
      caps.push_back(&cap);
      cap_sources.push_back(sd.source);
    }
  }
  const size_t n = caps.size();
  compile_span.Annotate("views", static_cast<uint64_t>(n));

  // Mirror RewriteQuery's chase options exactly: the constraints describe
  // source data, never view answer objects, so every view name is exempt.
  // The stored chase outcomes are only valid under these options, which is
  // why ValidateAgainst pins the (views, constraints) pair.
  ChaseOptions chase_options;
  chase_options.constraints = constraints;
  for (const Capability* cap : caps) {
    chase_options.constraint_exempt_sources.insert(cap->view.name);
  }

  std::vector<CompiledViewEntry> entries(n);
  std::vector<TslQuery> chased(n);
  std::vector<Diagnostic> diags;
  {
    ScopedSpan chase_span(options.tracer, "catalog.chase_views");
    for (size_t i = 0; i < n; ++i) {
      const TslQuery& view = caps[i]->view;
      CompiledViewEntry& e = entries[i];
      e.name = view.name;
      e.source = cap_sources[i];
      e.raw_fingerprint = CanonicalizeQuery(view).fingerprint;
      e.bound_variables.assign(caps[i]->bound_variables.begin(),
                               caps[i]->bound_variables.end());

      // TSL203: the mediator delivers a parameter by splicing the constant
      // into the capability head's instantiation, so a bound variable the
      // head never mentions can never be supplied — no binding pattern
      // reaches the capability.
      for (const std::string& var : caps[i]->bound_variables) {
        bool in_head = false;
        for (const Term& v : view.HeadVariables()) {
          in_head = in_head || v.var_name() == var;
        }
        if (!in_head) {
          diags.push_back(MakeDiag(
              DiagCode::kUnreachableCapability, view.span, view.name,
              StrCat("bound variable ", var, " does not occur in the head of ",
                     view.name,
                     "; the mediator can never instantiate it, so no "
                     "admissible binding pattern reaches this capability")));
        }
      }

      if (!ValidateQuery(view).ok() || view.name.empty() ||
          UsesRegexSteps(view)) {
        // The per-rule analyzer pass below reports the specifics
        // (TSL001-TSL004); the catalog just records that its signatures
        // prove nothing and must not be served.
        e.state = CompiledViewState::kInvalid;
        continue;
      }
      const TslQuery normal = ToNormalForm(view);
      if (normal.body.size() > options.max_chase_conditions) {
        e.state = CompiledViewState::kAlwaysScan;
        diags.push_back(MakeDiag(
            DiagCode::kChaseBudgetExceeded, view.span, view.name,
            StrCat("normal-form body of ", view.name, " has ",
                   normal.body.size(), " conditions, over the offline chase "
                   "budget of ", options.max_chase_conditions,
                   "; the view will be chased per query instead")));
        continue;
      }
      Result<TslQuery> cv = ChaseQuery(view, chase_options);
      if (!cv.ok()) {
        if (!cv.status().IsUnsatisfiable()) return cv.status();
        e.state = CompiledViewState::kUnsatisfiable;
        diags.push_back(MakeDiag(
            DiagCode::kViewUnsatisfiable, view.span, view.name,
            StrCat("chase proves ", view.name, " empty under the catalog's "
                   "constraints (", cv.status().message(),
                   "); the view can contribute no rewriting and is dropped "
                   "from the compiled index")));
        continue;
      }
      e.state = CompiledViewState::kIndexed;
      chased[i] = std::move(cv).value();
      e.chased_text = chased[i].ToString();
      e.chased_fingerprint = CanonicalizeQuery(chased[i]).fingerprint;
      TSLRW_ASSIGN_OR_RETURN(e.required, RequiredFeatures(chased[i]));
    }
  }

  // Anchor choice: file each indexed view under its catalog-wide rarest
  // required feature, so bucket sizes — and therefore probe cost — track
  // how discriminating the catalog's structure actually is.
  {
    std::map<std::string, size_t> frequency;
    for (const CompiledViewEntry& e : entries) {
      if (e.state != CompiledViewState::kIndexed) continue;
      for (const std::string& f : e.required) ++frequency[f];
    }
    for (CompiledViewEntry& e : entries) {
      if (e.state != CompiledViewState::kIndexed || e.required.empty()) {
        continue;
      }
      e.anchor = e.required.front();
      for (const std::string& f : e.required) {
        if (frequency[f] < frequency[e.anchor]) e.anchor = f;
      }
    }
  }

  // TSL201: α-equivalent duplicates, by canonical fingerprint of the raw
  // definitions. Every copy after the first (in catalog order) is flagged.
  std::map<uint64_t, std::vector<size_t>> by_fingerprint;
  for (size_t i = 0; i < n; ++i) {
    if (entries[i].state != CompiledViewState::kInvalid) {
      by_fingerprint[entries[i].raw_fingerprint].push_back(i);
    }
  }
  for (const auto& [fp, group] : by_fingerprint) {
    for (size_t k = 1; k < group.size(); ++k) {
      const TslQuery& view = caps[group[k]]->view;
      diags.push_back(MakeDiag(
          DiagCode::kDuplicateView, view.span, view.name,
          StrCat(view.name, " is α-equivalent to ", caps[group[0]]->view.name,
                 "; duplicate capabilities widen the rewriting search "
                 "without adding coverage")));
    }
  }

  // Subsumption lattice over the indexed views: i ⊑ j when every answer i
  // contributes is also produced by j (\S4 one-sided containment of the
  // chased definitions). The signature prefilter skips pairs where the
  // subsuming side requires a feature the subsumed side's body cannot
  // provide — such a containment mapping cannot exist.
  std::vector<CatalogLatticeEdge> lattice;
  bool truncated = false;
  size_t tested = 0;
  if (options.compute_lattice) {
    ScopedSpan lattice_span(options.tracer, "catalog.lattice");
    std::vector<uint32_t> indexed;
    for (size_t i = 0; i < n; ++i) {
      if (entries[i].state == CompiledViewState::kIndexed) {
        indexed.push_back(static_cast<uint32_t>(i));
      }
    }
    std::vector<std::set<std::string>> provided(n);
    for (uint32_t i : indexed) {
      TSLRW_ASSIGN_OR_RETURN(QueryFeatureSet qf, ProvidedFeatures(chased[i]));
      provided[i] = std::move(qf.provided);
    }
    std::vector<std::vector<bool>> contained(n, std::vector<bool>(n, false));
    for (uint32_t j : indexed) {
      std::optional<EquivalenceTester> tester;
      for (uint32_t i : indexed) {
        if (i == j) continue;
        if (entries[i].raw_fingerprint == entries[j].raw_fingerprint) {
          contained[i][j] = true;  // α-equivalent, no test needed
          continue;
        }
        if (truncated) continue;
        if (!FeaturesSubset(entries[j].required, provided[i])) continue;
        if (tested >= options.max_containment_pairs) {
          truncated = true;
          continue;
        }
        ++tested;
        if (!tester.has_value()) {
          Result<EquivalenceTester> made = EquivalenceTester::Make(
              TslRuleSet::Single(chased[j]), chase_options);
          if (!made.ok()) return made.status();
          tester.emplace(std::move(made).value());
        }
        TSLRW_ASSIGN_OR_RETURN(
            bool c, tester->ContainedInReference(TslRuleSet::Single(chased[i])));
        if (c) contained[i][j] = true;
      }
    }
    for (uint32_t i : indexed) {
      for (uint32_t j : indexed) {
        if (i != j && contained[i][j]) {
          lattice.push_back(CatalogLatticeEdge{i, j, contained[j][i]});
        }
      }
    }
    // TSL200: one finding per subsumed view, naming its (first) subsumer.
    // α-duplicate pairs are TSL201's; for mutually-contained distinct
    // definitions only the later catalog entry is flagged, so one of an
    // equivalent pair always survives unflagged.
    for (uint32_t i : indexed) {
      for (uint32_t j : indexed) {
        if (i == j || !contained[i][j]) continue;
        if (entries[i].raw_fingerprint == entries[j].raw_fingerprint) continue;
        if (contained[j][i] && i < j) continue;
        const TslQuery& view = caps[i]->view;
        diags.push_back(MakeDiag(
            DiagCode::kViewSubsumed, view.span, view.name,
            contained[j][i]
                ? StrCat(view.name, " is equivalent to ", entries[j].name,
                         " under the catalog's constraints; it only widens "
                         "the rewriting search")
                : StrCat(view.name, " is subsumed by ", entries[j].name,
                         ": every answer it contributes is already produced "
                         "there, so it only widens the rewriting search")));
        break;
      }
    }
    lattice_span.Annotate("edges", static_cast<uint64_t>(lattice.size()));
    lattice_span.Annotate("containment_tests", static_cast<uint64_t>(tested));
  }
  CountIf(options.metrics, "catalog.containment_tests", tested);

  // Fold in the per-rule analyzer findings so a compile report is a
  // superset of `tslrw_analyze` over the same rules. Dead-view detection
  // stays off: TSL200/201 report the same pathology with exact evidence.
  if (options.analyze_rules) {
    ScopedSpan analyze_span(options.tracer, "catalog.analyze_rules");
    AnalyzerOptions analyzer_options;
    analyzer_options.constraints = constraints;
    analyzer_options.constraint_exempt_sources =
        chase_options.constraint_exempt_sources;
    analyzer_options.detect_dead_views = false;
    std::vector<TslQuery> views;
    views.reserve(n);
    for (const Capability* cap : caps) views.push_back(cap->view);
    AnalysisReport report = Analyzer(analyzer_options).AnalyzeRules(views);
    diags.insert(diags.end(), report.diagnostics.begin(),
                 report.diagnostics.end());
  }

  Result<std::shared_ptr<const CompiledCatalog>> catalog =
      CompiledCatalog::Assemble(std::move(entries), std::move(lattice),
                                truncated, std::move(diags),
                                ConstraintsFingerprint(constraints));
  if (catalog.ok()) {
    const CompiledCatalog& c = **catalog;
    size_t indexed_views = 0;
    for (const CompiledViewEntry& e : c.entries()) {
      if (e.state == CompiledViewState::kIndexed) ++indexed_views;
    }
    compile_span.Annotate("indexed", static_cast<uint64_t>(indexed_views));
    compile_span.Annotate("lattice_edges",
                          static_cast<uint64_t>(c.lattice().size()));
    compile_span.Annotate("diagnostics",
                          static_cast<uint64_t>(c.diagnostics().size()));
    if (c.lattice_truncated()) compile_span.Annotate("truncated", "true");
    CountIf(options.metrics, "catalog.views_compiled", c.entries().size());
    CountIf(options.metrics, "catalog.views_indexed", indexed_views);
    CountIf(options.metrics, "catalog.diagnostics", c.diagnostics().size());
  }
  return catalog;
}

}  // namespace tslrw
