#include "catalog/signature.h"

#include <algorithm>

#include "common/string_util.h"
#include "tsl/normal_form.h"

namespace tslrw {

namespace {

std::string SourceFeature(const std::string& source) {
  return StrCat("s:", source);
}

std::string DepthFeature(const std::string& source, size_t depth) {
  return StrCat("d:", source, ":", depth);
}

std::string LabelFeature(const std::string& source, size_t step,
                         const std::string& label) {
  return StrCat("l:", source, ":", step, ":", label);
}

std::string TailFeature(const std::string& source, const std::string& atom) {
  return StrCat("t:", source, ":", atom);
}

}  // namespace

Result<std::vector<std::string>> RequiredFeatures(
    const TslQuery& chased_view) {
  TSLRW_ASSIGN_OR_RETURN(std::vector<Path> paths, BodyPaths(chased_view));
  std::set<std::string> required;
  for (const Path& path : paths) {
    required.insert(SourceFeature(path.source));
    required.insert(DepthFeature(path.source, path.depth()));
    for (size_t i = 0; i < path.steps.size(); ++i) {
      if (path.steps[i].label.is_atom()) {
        required.insert(
            LabelFeature(path.source, i, path.steps[i].label.atom_name()));
      }
    }
    if (path.tail.is_term() && path.tail.term().is_atom()) {
      required.insert(TailFeature(path.source, path.tail.term().atom_name()));
    }
  }
  return std::vector<std::string>(required.begin(), required.end());
}

Result<QueryFeatureSet> ProvidedFeatures(const TslQuery& chased_query) {
  TSLRW_ASSIGN_OR_RETURN(std::vector<Path> paths, BodyPaths(chased_query));
  QueryFeatureSet out;
  for (const Path& path : paths) {
    out.sources.insert(path.source);
    out.provided.insert(SourceFeature(path.source));
    // A view path of depth d maps only into query paths of depth >= d, so
    // a query path of depth n provides every depth feature up to n.
    for (size_t k = 1; k <= path.depth(); ++k) {
      out.provided.insert(DepthFeature(path.source, k));
    }
    for (size_t i = 0; i < path.steps.size(); ++i) {
      if (path.steps[i].label.is_atom()) {
        out.provided.insert(
            LabelFeature(path.source, i, path.steps[i].label.atom_name()));
      }
    }
    if (path.tail.is_term() && path.tail.term().is_atom()) {
      out.provided.insert(
          TailFeature(path.source, path.tail.term().atom_name()));
    }
  }
  return out;
}

}  // namespace tslrw
