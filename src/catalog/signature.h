#ifndef TSLRW_CATALOG_SIGNATURE_H_
#define TSLRW_CATALOG_SIGNATURE_H_

#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "tsl/ast.h"

namespace tslrw {

/// \brief α-invariant structural features of chased normal-form bodies —
/// the abstraction behind the compiled catalog's signature index.
///
/// Every feature is an *exact necessary condition* for a containment
/// mapping, read off MapPathInto (rewrite/mapping.cc): a view body path
/// maps into a query body path only if the sources are identical, the
/// query path is at least as deep, and every ground label (and ground term
/// tail) of the view path is matched verbatim. So if some *required*
/// feature of a chased view is not *provided* by the chased query body,
/// FindBodyMappings is guaranteed to find zero mappings from that view —
/// and a zero-mapping view contributes no candidate atoms, which is what
/// makes signature pruning byte-exact (docs/CATALOG.md gives the full
/// argument).
///
/// Feature spellings (stable — they are serialized in the index file):
///   "s:<source>"            the body touches <source>
///   "d:<source>:<k>"        a <source> path of depth >= k exists
///   "l:<source>:<i>:<lbl>"  a <source> path whose step i has ground
///                           label <lbl> exists
///   "t:<source>:<atom>"     a <source> path ends in the ground atom
///                           <atom>
///
/// Variables contribute nothing (they bind to anything sort-compatible),
/// so the features are α-invariant by construction.

/// The features a chased view body *requires* of any query it can map
/// into: sorted, deduplicated. Fails only if \p chased_view is not in
/// normal form (chase output always is).
Result<std::vector<std::string>> RequiredFeatures(const TslQuery& chased_view);

/// The features a chased query body *provides*, plus its body source
/// names (used to force-include views the query references by name).
struct QueryFeatureSet {
  std::set<std::string> provided;
  std::set<std::string> sources;
};
Result<QueryFeatureSet> ProvidedFeatures(const TslQuery& chased_query);

}  // namespace tslrw

#endif  // TSLRW_CATALOG_SIGNATURE_H_
