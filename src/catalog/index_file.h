#ifndef TSLRW_CATALOG_INDEX_FILE_H_
#define TSLRW_CATALOG_INDEX_FILE_H_

#include <memory>
#include <string>
#include <string_view>

#include "catalog/compiler.h"
#include "common/result.h"

namespace tslrw {

/// \brief The persistent form of a CompiledCatalog (`tslrw_compile -o`,
/// `Mediator::Make` snapshot ingestion).
///
/// Layout (all integers little-endian, strings length-prefixed):
///
///     magic   "TSLRWIX1"                     8 bytes
///     version u32 (= kCatalogIndexVersion)
///     checksum u64 = StableFingerprint(payload)
///     length  u64 = payload byte count
///     payload: constraints fingerprint, flags, entries, lattice,
///              diagnostics
///
/// The payload holds exactly the inputs of CompiledCatalog::Assemble, and
/// loading funnels through Assemble, so a load-then-serialize round trip is
/// byte-identical and a loaded index probes byte-identically to a fresh
/// compile. Serialization is a pure function of the catalog — no
/// timestamps, no paths — which the round-trip property test pins down.
///
/// Every malformed input — short file, bad magic, unknown version, checksum
/// mismatch, truncated or over-long payload, out-of-range enum byte —
/// fails with StatusCode::kDataLoss, the signal attach points use to fall
/// back to an in-memory compile.

inline constexpr char kCatalogIndexMagic[8] = {'T', 'S', 'L', 'R',
                                               'W', 'I', 'X', '1'};
inline constexpr uint32_t kCatalogIndexVersion = 1;

/// Serializes \p catalog (header included).
std::string SerializeCatalog(const CompiledCatalog& catalog);

/// Parses \p bytes; kDataLoss on any integrity failure.
Result<std::shared_ptr<const CompiledCatalog>> DeserializeCatalog(
    std::string_view bytes);

/// Writes the serialized catalog to \p path (atomically via rename, so a
/// crashed writer never leaves a torn index behind a valid header).
Status SaveCatalogIndex(const CompiledCatalog& catalog,
                        const std::string& path);

/// Reads and deserializes \p path. Unreadable files are NotFound;
/// corrupted ones are kDataLoss.
Result<std::shared_ptr<const CompiledCatalog>> LoadCatalogIndex(
    const std::string& path);

/// \brief How LoadOrCompileCatalog obtained its catalog.
struct CatalogLoadOutcome {
  std::shared_ptr<const CompiledCatalog> catalog;
  /// True when the index file supplied the catalog; false when it was
  /// recompiled in memory.
  bool loaded_from_file = false;
  /// Why the file was not used (NotFound, kDataLoss, or a failed
  /// ValidateAgainst); OK when loaded_from_file.
  Status load_status = Status::OK();
};

/// \brief Loads \p path and validates it against (\p sources'\ views,
/// \p constraints); on any failure — missing file, corruption, stale
/// definitions — falls back to CompileCatalog and reports why in
/// `load_status`. Only a fallback *compile* failure is a failed Result.
Result<CatalogLoadOutcome> LoadOrCompileCatalog(
    const std::string& path, const std::vector<SourceDescription>& sources,
    const StructuralConstraints* constraints,
    const CatalogCompileOptions& options = {});

}  // namespace tslrw

#endif  // TSLRW_CATALOG_INDEX_FILE_H_
