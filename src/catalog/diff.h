#ifndef TSLRW_CATALOG_DIFF_H_
#define TSLRW_CATALOG_DIFF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "constraints/inference.h"
#include "mediator/capability.h"

namespace tslrw {

/// \brief One view-level difference between two catalogs, keyed by view
/// name with the α-invariant identity fingerprints on both sides (0 when
/// the view is absent on that side).
struct CatalogDeltaEntry {
  std::string name;
  uint64_t old_fingerprint = 0;
  uint64_t new_fingerprint = 0;
};

/// \brief The semantic difference between two catalog snapshots, computed
/// by ComputeCatalogDelta. Drives selective plan-cache invalidation
/// (src/maint/invalidate.h): an empty delta proves every cached plan set is
/// still exact; a non-empty one names precisely which views changed.
struct CatalogDelta {
  /// Views present only in the new catalog.
  std::vector<CatalogDeltaEntry> added;
  /// Views present only in the old catalog.
  std::vector<CatalogDeltaEntry> removed;
  /// Views present in both whose identity fingerprints differ — the rule
  /// changed beyond α-renaming, or the bound-variable set changed.
  std::vector<CatalogDeltaEntry> changed;
  /// The structural constraints differ (by catalog ConstraintsFingerprint).
  /// Constraints shape every chase — query, views, candidates — so any
  /// constraint change invalidates the whole cache.
  bool constraints_changed = false;
  /// A delta view's *name* collides with a source name referenced by some
  /// view body in either catalog. View names form the constraint-exempt set
  /// other views are chased under, so such a delta can change the stored
  /// chase of an untouched view; the decider falls back to a full flush.
  bool exempt_hazard = false;

  /// True when the two catalogs are plan-equivalent: same view identities
  /// (up to α and source placement) and same constraints.
  bool empty() const {
    return added.empty() && removed.empty() && changed.empty() &&
           !constraints_changed && !exempt_hazard;
  }

  /// Names of every added/removed/changed view, sorted and unique.
  std::vector<std::string> TouchedNames() const;

  /// One-line human summary, e.g. `+1 -0 ~2 views, constraints unchanged`.
  std::string ToString() const;
};

/// \brief Diffs two catalogs by α-invariant view identity
/// (mediator/capability.h ViewIdentityFingerprint) and constraints
/// fingerprint (catalog/compiler.h). A view renamed α-equivalently — same
/// name, consistently renamed variables — diffs as unchanged; a view whose
/// body or bound-variable set changed diffs as changed. Duplicate view
/// names inside one catalog (rejected by ValidateDescriptions anyway) are
/// folded by fingerprint-XOR so a duplicate still shows up as a change.
CatalogDelta ComputeCatalogDelta(
    const std::vector<SourceDescription>& old_sources,
    const StructuralConstraints* old_constraints,
    const std::vector<SourceDescription>& new_sources,
    const StructuralConstraints* new_constraints);

}  // namespace tslrw

#endif  // TSLRW_CATALOG_DIFF_H_
