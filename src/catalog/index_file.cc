#include "catalog/index_file.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "tsl/canonical.h"

namespace tslrw {

namespace {

// --- little-endian primitives ----------------------------------------------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

/// Bounds-checked cursor over the payload; every short read is kDataLoss.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  Result<uint8_t> U8() {
    TSLRW_RETURN_NOT_OK(Need(1));
    return static_cast<uint8_t>(bytes_[pos_++]);
  }

  Result<uint32_t> U32() {
    TSLRW_RETURN_NOT_OK(Need(4));
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  Result<uint64_t> U64() {
    TSLRW_RETURN_NOT_OK(Need(8));
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  Result<std::string> String() {
    TSLRW_ASSIGN_OR_RETURN(uint32_t len, U32());
    TSLRW_RETURN_NOT_OK(Need(len));
    std::string s(bytes_.substr(pos_, len));
    pos_ += len;
    return s;
  }

  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  Status Need(size_t n) {
    if (bytes_.size() - pos_ < n) {
      return Status::DataLoss("catalog index payload is truncated");
    }
    return Status::OK();
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

std::string SerializePayload(const CompiledCatalog& catalog) {
  std::string p;
  PutU64(&p, catalog.constraints_fingerprint());
  PutU8(&p, catalog.lattice_truncated() ? 1 : 0);
  PutU32(&p, static_cast<uint32_t>(catalog.entries().size()));
  for (const CompiledViewEntry& e : catalog.entries()) {
    PutString(&p, e.name);
    PutString(&p, e.source);
    PutU8(&p, static_cast<uint8_t>(e.state));
    PutU64(&p, e.raw_fingerprint);
    PutU64(&p, e.chased_fingerprint);
    PutString(&p, e.chased_text);
    PutU32(&p, static_cast<uint32_t>(e.required.size()));
    for (const std::string& f : e.required) PutString(&p, f);
    PutString(&p, e.anchor);
    PutU32(&p, static_cast<uint32_t>(e.bound_variables.size()));
    for (const std::string& v : e.bound_variables) PutString(&p, v);
  }
  PutU32(&p, static_cast<uint32_t>(catalog.lattice().size()));
  for (const CatalogLatticeEdge& edge : catalog.lattice()) {
    PutU32(&p, edge.subsumed);
    PutU32(&p, edge.subsuming);
    PutU8(&p, edge.equivalent ? 1 : 0);
  }
  PutU32(&p, static_cast<uint32_t>(catalog.diagnostics().size()));
  for (const Diagnostic& d : catalog.diagnostics()) {
    PutU8(&p, static_cast<uint8_t>(d.code));
    PutU32(&p, static_cast<uint32_t>(d.span.line));
    PutU32(&p, static_cast<uint32_t>(d.span.column));
    PutString(&p, d.rule);
    PutString(&p, d.message);
  }
  return p;
}

Result<DiagCode> CheckDiagCode(uint8_t byte) {
  const DiagCode code = static_cast<DiagCode>(byte);
  switch (code) {
    case DiagCode::kParseError:
    case DiagCode::kUnsafeQuery:
    case DiagCode::kHeadOidViolation:
    case DiagCode::kCyclicPattern:
    case DiagCode::kMisplacedRegexStep:
    case DiagCode::kVariableSortClash:
    case DiagCode::kUnsatisfiableBody:
    case DiagCode::kRedundantCondition:
    case DiagCode::kCartesianProduct:
    case DiagCode::kUnboundedPathStep:
    case DiagCode::kDeadView:
    case DiagCode::kSingleUseVariable:
    case DiagCode::kSearchTruncated:
    case DiagCode::kViewSubsumed:
    case DiagCode::kDuplicateView:
    case DiagCode::kViewUnsatisfiable:
    case DiagCode::kUnreachableCapability:
    case DiagCode::kChaseBudgetExceeded:
      return code;
  }
  return Status::DataLoss(
      StrCat("catalog index holds unknown diagnostic code ", byte));
}

Result<std::shared_ptr<const CompiledCatalog>> DeserializePayload(
    std::string_view payload) {
  Reader r(payload);
  TSLRW_ASSIGN_OR_RETURN(uint64_t constraints_fingerprint, r.U64());
  TSLRW_ASSIGN_OR_RETURN(uint8_t truncated_byte, r.U8());
  if (truncated_byte > 1) {
    return Status::DataLoss("catalog index flag byte is not a boolean");
  }
  TSLRW_ASSIGN_OR_RETURN(uint32_t entry_count, r.U32());
  std::vector<CompiledViewEntry> entries;
  entries.reserve(entry_count);
  for (uint32_t i = 0; i < entry_count; ++i) {
    CompiledViewEntry e;
    TSLRW_ASSIGN_OR_RETURN(e.name, r.String());
    TSLRW_ASSIGN_OR_RETURN(e.source, r.String());
    TSLRW_ASSIGN_OR_RETURN(uint8_t state, r.U8());
    if (state > static_cast<uint8_t>(CompiledViewState::kInvalid)) {
      return Status::DataLoss(
          StrCat("catalog index holds unknown view state ", state));
    }
    e.state = static_cast<CompiledViewState>(state);
    TSLRW_ASSIGN_OR_RETURN(e.raw_fingerprint, r.U64());
    TSLRW_ASSIGN_OR_RETURN(e.chased_fingerprint, r.U64());
    TSLRW_ASSIGN_OR_RETURN(e.chased_text, r.String());
    TSLRW_ASSIGN_OR_RETURN(uint32_t required_count, r.U32());
    e.required.reserve(required_count);
    for (uint32_t k = 0; k < required_count; ++k) {
      TSLRW_ASSIGN_OR_RETURN(std::string f, r.String());
      e.required.push_back(std::move(f));
    }
    TSLRW_ASSIGN_OR_RETURN(e.anchor, r.String());
    TSLRW_ASSIGN_OR_RETURN(uint32_t bound_count, r.U32());
    e.bound_variables.reserve(bound_count);
    for (uint32_t k = 0; k < bound_count; ++k) {
      TSLRW_ASSIGN_OR_RETURN(std::string v, r.String());
      e.bound_variables.push_back(std::move(v));
    }
    entries.push_back(std::move(e));
  }
  TSLRW_ASSIGN_OR_RETURN(uint32_t edge_count, r.U32());
  std::vector<CatalogLatticeEdge> lattice;
  lattice.reserve(edge_count);
  for (uint32_t i = 0; i < edge_count; ++i) {
    CatalogLatticeEdge edge;
    TSLRW_ASSIGN_OR_RETURN(edge.subsumed, r.U32());
    TSLRW_ASSIGN_OR_RETURN(edge.subsuming, r.U32());
    TSLRW_ASSIGN_OR_RETURN(uint8_t eq, r.U8());
    if (eq > 1) {
      return Status::DataLoss("catalog index edge flag is not a boolean");
    }
    edge.equivalent = eq == 1;
    lattice.push_back(edge);
  }
  TSLRW_ASSIGN_OR_RETURN(uint32_t diag_count, r.U32());
  std::vector<Diagnostic> diagnostics;
  diagnostics.reserve(diag_count);
  for (uint32_t i = 0; i < diag_count; ++i) {
    Diagnostic d;
    TSLRW_ASSIGN_OR_RETURN(uint8_t code, r.U8());
    TSLRW_ASSIGN_OR_RETURN(d.code, CheckDiagCode(code));
    d.severity = DiagCodeSeverity(d.code);
    TSLRW_ASSIGN_OR_RETURN(uint32_t line, r.U32());
    TSLRW_ASSIGN_OR_RETURN(uint32_t column, r.U32());
    d.span.line = static_cast<int>(line);
    d.span.column = static_cast<int>(column);
    TSLRW_ASSIGN_OR_RETURN(d.rule, r.String());
    TSLRW_ASSIGN_OR_RETURN(d.message, r.String());
    diagnostics.push_back(std::move(d));
  }
  if (!r.exhausted()) {
    return Status::DataLoss("catalog index payload has trailing bytes");
  }
  return CompiledCatalog::Assemble(std::move(entries), std::move(lattice),
                                   truncated_byte == 1,
                                   std::move(diagnostics),
                                   constraints_fingerprint);
}

}  // namespace

std::string SerializeCatalog(const CompiledCatalog& catalog) {
  const std::string payload = SerializePayload(catalog);
  std::string out;
  out.reserve(sizeof(kCatalogIndexMagic) + 20 + payload.size());
  out.append(kCatalogIndexMagic, sizeof(kCatalogIndexMagic));
  PutU32(&out, kCatalogIndexVersion);
  PutU64(&out, StableFingerprint(payload));
  PutU64(&out, payload.size());
  out += payload;
  return out;
}

Result<std::shared_ptr<const CompiledCatalog>> DeserializeCatalog(
    std::string_view bytes) {
  constexpr size_t kHeaderSize = sizeof(kCatalogIndexMagic) + 4 + 8 + 8;
  if (bytes.size() < kHeaderSize) {
    return Status::DataLoss("catalog index file is shorter than its header");
  }
  if (std::memcmp(bytes.data(), kCatalogIndexMagic,
                  sizeof(kCatalogIndexMagic)) != 0) {
    return Status::DataLoss("catalog index file has a bad magic number");
  }
  Reader header(bytes.substr(sizeof(kCatalogIndexMagic)));
  TSLRW_ASSIGN_OR_RETURN(uint32_t version, header.U32());
  if (version != kCatalogIndexVersion) {
    return Status::DataLoss(
        StrCat("catalog index version ", version, " is not the supported ",
               kCatalogIndexVersion));
  }
  TSLRW_ASSIGN_OR_RETURN(uint64_t checksum, header.U64());
  TSLRW_ASSIGN_OR_RETURN(uint64_t length, header.U64());
  const std::string_view payload = bytes.substr(kHeaderSize);
  if (payload.size() != length) {
    return Status::DataLoss(
        StrCat("catalog index payload is ", payload.size(),
               " byte(s) but the header promises ", length));
  }
  if (StableFingerprint(payload) != checksum) {
    return Status::DataLoss("catalog index payload fails its checksum");
  }
  return DeserializePayload(payload);
}

Status SaveCatalogIndex(const CompiledCatalog& catalog,
                        const std::string& path) {
  const std::string bytes = SerializeCatalog(catalog);
  const std::string tmp = StrCat(path, ".tmp");
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Unavailable(StrCat("cannot open ", tmp, " for writing"));
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::Unavailable(StrCat("short write to ", tmp));
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Unavailable(StrCat("cannot move ", tmp, " into ", path));
  }
  return Status::OK();
}

Result<std::shared_ptr<const CompiledCatalog>> LoadCatalogIndex(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound(StrCat("no catalog index at ", path));
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::Unavailable(StrCat("error reading ", path));
  }
  return DeserializeCatalog(bytes);
}

Result<CatalogLoadOutcome> LoadOrCompileCatalog(
    const std::string& path, const std::vector<SourceDescription>& sources,
    const StructuralConstraints* constraints,
    const CatalogCompileOptions& options) {
  CatalogLoadOutcome outcome;
  Result<std::shared_ptr<const CompiledCatalog>> loaded =
      LoadCatalogIndex(path);
  if (loaded.ok()) {
    std::vector<TslQuery> views;
    for (const SourceDescription& sd : sources) {
      for (const Capability& cap : sd.capabilities) views.push_back(cap.view);
    }
    Status valid = (*loaded)->ValidateAgainst(views, constraints);
    if (valid.ok()) {
      outcome.catalog = std::move(loaded).value();
      outcome.loaded_from_file = true;
      return outcome;
    }
    outcome.load_status = valid;
  } else {
    outcome.load_status = loaded.status();
  }
  TSLRW_ASSIGN_OR_RETURN(outcome.catalog,
                         CompileCatalog(sources, constraints, options));
  return outcome;
}

}  // namespace tslrw
