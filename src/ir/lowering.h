#ifndef TSLRW_IR_LOWERING_H_
#define TSLRW_IR_LOWERING_H_

#include <cstdint>
#include <string>

#include "ir/ir.h"
#include "tsl/ast.h"

namespace tslrw {

// Internal lowering hooks shared between the compiler (compiler.cc) and the
// optimization passes (passes.cc). Not part of the public IR surface.

/// Interns \p source in the program's source pool and returns its index.
int32_t InternIrSource(IrProgram* program, const std::string& source);

/// Appends a match unit for \p condition — matched from scratch, exactly
/// like a first body condition — to the program: ops go at the end of the
/// op vector, the unit gets a local frame over the condition's variables
/// (sorted), canonical column names, and an α-invariant fingerprint.
/// Returns the unit index.
int32_t LowerConditionUnit(IrProgram* program, const Condition& condition);

}  // namespace tslrw

#endif  // TSLRW_IR_LOWERING_H_
