#ifndef TSLRW_IR_IR_H_
#define TSLRW_IR_IR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "oem/term.h"
#include "tsl/ast.h"

namespace tslrw {

/// \brief Opcodes of the flat register-based execution IR (docs/IR.md).
///
/// A program is one shared op vector sliced into per-rule *segments* (match
/// region + emit region) and hoisted *match units*. The match region is a
/// backtracking iterator pipeline over an explicit binding-register file:
/// iterator ops (kIterRoots / kIterMembers / kJoinUnit) open choice points,
/// match ops bind registers through a trail, and failure of any op resumes
/// the innermost choice point after unwinding the trail — the bind-trail
/// insight of the parallel rewriter's MatchInto applied to evaluation.
enum class IrOpCode : uint8_t {
  // -- iterator ops (each opens a choice point) --
  /// a = source index, b = pattern index (top-level condition pattern, used
  /// for the constant-root-label prefilter), c = object slot loaded with
  /// each candidate root in turn.
  kIterRoots,
  /// a = parent object slot, b = pattern index (the set-pattern member,
  /// whose step kind selects children / label chains / descendants),
  /// c = object slot for the candidate.
  kIterMembers,
  /// a = unit index, b = bindmap index. Iterates the unit's materialized
  /// rows; for each row, every unit column is copied into its mapped
  /// segment register — compare on already-bound registers (the join
  /// filter), bind through the trail otherwise.
  kJoinUnit,
  // -- match ops (fail => backtrack) --
  /// a = compiled term, b = object slot: match the term against the
  /// object's oid.
  kMatchOid,
  /// a = compiled term, b = object slot: match the term against the
  /// object's label (skipped by the compiler for `**` steps).
  kMatchLabel,
  /// a = compiled term, b = object slot: match the term against the
  /// object's value — atomic values structurally, set values by binding a
  /// value variable to the (database, owner) subgraph.
  kMatchValueTerm,
  /// a = object slot: the object must be set-valued (guards set patterns
  /// and member iteration).
  kRequireSet,
  // -- emit ops --
  /// a = segment index: record the full register frame as one satisfying
  /// row, then backtrack to enumerate the next.
  kEmitRow,
  /// a = unit index: like kEmitRow but appends to the unit's row cache
  /// (kept as an ordered multiset; the segment's row set dedups later,
  /// exactly like the tree walker's final std::set<Assignment>).
  kEmitUnitRow,
  /// a = compiled head index, d = 1 when the copy-elision pass enabled the
  /// per-answer subgraph-copy memo for this head. Instantiates the head
  /// pattern under the current row (fusing into the answer database) and
  /// leaves the created root oid in the emit scratch register.
  kEmitHead,
  /// Adds the emit scratch oid to the answer's roots.
  kFuseRoot,
  // -- control --
  /// a = target pc (absolute). Terminates each emit region.
  kBranch,
};

/// \brief A fixed-width flat op. Operand meaning depends on the opcode;
/// unused operands are -1 (d defaults to 0: it carries pass flags).
struct IrOp {
  IrOpCode code;
  int32_t a = -1;
  int32_t b = -1;
  int32_t c = -1;
  int32_t d = 0;
};

/// \brief A body/head term compiled against a frame: variables carry their
/// register index, atoms and function spines keep the original Term for
/// exact comparisons and byte-identical error messages.
struct CompiledTerm {
  TermKind kind = TermKind::kAtom;
  /// The original term: atom spelling for kAtom, variable for error text,
  /// functor for kFunction.
  Term term;
  /// kVariable: frame register, or -1 when the variable is not part of the
  /// frame (a head-only variable — reproduces the tree walker's "unsafe
  /// head variable" error at emit time).
  int32_t reg = -1;
  /// kFunction: argument CompiledTerm indices.
  std::vector<int32_t> args;
};

/// \brief A head object pattern compiled for the emit region; mirrors
/// eval's BuildObject shape exactly.
struct CompiledHead {
  int32_t oid = -1;    ///< CompiledTerm index
  int32_t label = -1;  ///< CompiledTerm index
  bool is_set = false;
  int32_t value = -1;               ///< CompiledTerm index when !is_set
  std::vector<int32_t> members;     ///< CompiledHead indices when is_set
};

/// \brief Pass metadata: the op range one body condition lowered to, and
/// which condition it was. The hoisting pass turns a block into a single
/// kJoinUnit op; the range shrinks accordingly.
struct IrCondBlock {
  int32_t begin = 0;
  int32_t end = 0;
  int32_t condition = -1;  ///< index into IrProgram::conditions
};

/// \brief One rule of the compiled rule set: a match region (ends with
/// kEmitRow) enumerating satisfying rows, and an emit region (kEmitHead /
/// kFuseRoot / kBranch) run once per sorted deduplicated row.
struct IrSegment {
  std::string rule_name;
  int32_t match_begin = 0;
  int32_t match_end = 0;
  int32_t emit_begin = 0;
  int32_t emit_end = 0;
  /// Binding registers: one per body variable. Register i holds vars[i];
  /// vars is sorted by Term order, so a lexicographic compare of register
  /// rows equals the tree walker's std::map<Term, BoundValue> compare (all
  /// complete rows bind exactly this variable set).
  int32_t frame_size = 0;
  /// Object slots used by this segment's iterator pipeline.
  int32_t slot_count = 0;
  std::vector<Term> vars;
  std::vector<IrCondBlock> blocks;
};

/// \brief A hoisted match unit: one body condition matched from scratch
/// (independent of outer bindings), materialized once per execution and
/// shared by every kJoinUnit referencing it.
struct IrUnit {
  int32_t begin = 0;  ///< op range; ends with kEmitUnitRow
  int32_t end = 0;
  int32_t frame_size = 0;
  int32_t slot_count = 0;
  /// Sorted variables of the condition; row column i holds vars[i].
  std::vector<Term> vars;
  /// Canonical (first-occurrence α-renamed) name per column, aligned with
  /// vars. Common-subplan elimination uses these to remap bindmaps when two
  /// α-equivalent conditions merge into one unit.
  std::vector<std::string> col_canon;
  int32_t source = -1;  ///< index into IrProgram::sources
  /// α-invariant key of (renamed condition pattern, source): equal
  /// fingerprints mean the same rows, so the CSE pass merges the units.
  uint64_t fingerprint = 0;
};

/// \brief What one optimization pass did to the program, for the `plan Q
/// ir` dump and the tslrw_ir example.
struct IrPassStat {
  std::string pass;
  size_t ops_before = 0;
  size_t ops_after = 0;
  size_t units_before = 0;
  size_t units_after = 0;
  /// Free-form detail ("merged 120 units", "flagged 3 heads", "off").
  std::string note;
};

/// \brief A compiled plan: flat ops plus the constant pools they index.
/// Immutable after compilation, so one program is safely executed by many
/// threads concurrently (each execution carries its own state).
struct IrProgram {
  std::vector<IrOp> ops;
  std::vector<IrSegment> segments;
  std::vector<IrUnit> units;
  std::vector<CompiledTerm> terms;
  std::vector<CompiledHead> heads;
  /// Patterns referenced by iterator ops (prefilter labels, step kinds).
  std::vector<ObjectPattern> patterns;
  /// Source-name pool; "" resolves against IrExecOptions::default_source,
  /// mirroring EvalOptions.
  std::vector<std::string> sources;
  /// The original body conditions (pass metadata for hoisting and CSE).
  std::vector<Condition> conditions;
  /// kJoinUnit operand b: unit column -> segment register.
  std::vector<std::vector<int32_t>> bindmaps;
  /// Name of the front rule; the answer database's default name.
  std::string default_name;
  std::vector<IrPassStat> pass_stats;

  size_t op_count() const { return ops.size(); }
};

/// \brief Opcode mnemonic ("iter_roots", "match_oid", ...).
const char* IrOpName(IrOpCode code);

/// \brief Deterministic text listing of the whole program: segments, units,
/// ops with resolved operands, register files. The `plan <Q> ir` shell
/// command and examples/tslrw_ir print this.
std::string Disassemble(const IrProgram& program);

/// \brief Renders pass_stats as an aligned before/after table.
std::string PassStatsTable(const IrProgram& program);

}  // namespace tslrw

#endif  // TSLRW_IR_IR_H_
