#ifndef TSLRW_IR_COMPILER_H_
#define TSLRW_IR_COMPILER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "ir/ir.h"
#include "obs/metrics.h"
#include "tsl/ast.h"

namespace tslrw {

/// \brief Which optimization passes run after lowering (docs/IR.md). All on
/// by default — every configuration is byte-identical in its answers; the
/// toggles exist for the per-pass benchmark ablation and the IR dump.
struct IrPassOptions {
  /// Convert each inline condition block into a materialized match unit
  /// joined back on shared variables. A condition matched from scratch and
  /// filtered by BoundValue equality on the shared variables accepts
  /// exactly the extensions the inline pipeline would (matching is
  /// confluent), so rows — and therefore answers — are unchanged.
  bool hoist_invariant_submatches = true;
  /// Merge α-equivalent units (equal condition fingerprints) across
  /// conditions, member rules, and plans, so shared subplans are matched
  /// once per execution. Requires hoisting.
  bool common_subplan_elimination = true;
  /// Arm the per-answer subgraph-copy memo on emit: a (database, oid)
  /// subgraph already copied into the answer is not re-walked. Sound
  /// because CopySubgraph is deterministic and fusion is idempotent.
  bool copy_elision = true;
};

/// \brief Lowers TSL rules — a single query, a rule set, or a rewritten
/// plan list — to the flat register IR and runs the optimization passes.
///
/// Compilation is total: shapes the tree walker only rejects at runtime
/// (unsafe head variables, function-term head values) compile fine and
/// reproduce the identical error when the interpreter reaches them.
class PlanCompiler {
 public:
  PlanCompiler() = default;
  explicit PlanCompiler(IrPassOptions passes,
                        MetricRegistry* metrics = nullptr)
      : passes_(passes), metrics_(metrics) {}

  /// Compiles a single rule: one segment; ExecuteIr matches Evaluate.
  Result<std::shared_ptr<const IrProgram>> Compile(
      const TslQuery& query) const;

  /// Compiles a rule set: one segment per rule sharing one answer;
  /// ExecuteIr matches EvaluateRuleSet.
  Result<std::shared_ptr<const IrProgram>> Compile(
      const TslRuleSet& rules) const;

  /// Compiles an already-rewritten plan list: one segment per plan.
  /// ExecuteIrPerSegment matches per-plan Evaluate calls, with hoisted
  /// units (and, with CSE, their materialized rows) shared across plans.
  Result<std::shared_ptr<const IrProgram>> CompilePlans(
      const std::vector<TslQuery>& plans) const;

 private:
  IrPassOptions passes_;
  MetricRegistry* metrics_ = nullptr;
};

/// \brief The α-invariant key the CSE pass shares units by: the condition's
/// pattern with variables renamed in first-occurrence order (O0/C0...,
/// preserving sorts), rendered and fingerprinted together with the source
/// name. Equal keys => identical candidate iteration => identical rows.
/// Exposed for tests.
uint64_t ConditionFingerprint(const Condition& condition);

/// \brief The canonical name each variable of \p condition receives under
/// the ConditionFingerprint renaming, in first-occurrence order.
std::map<Term, std::string> CanonicalConditionNames(
    const Condition& condition);

}  // namespace tslrw

#endif  // TSLRW_IR_COMPILER_H_
