#include "ir/interp.h"

#include <chrono>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <utility>

#include "common/string_util.h"
#include "eval/binding.h"
#include "eval/matcher.h"

namespace tslrw {

namespace {

/// Identical to eval's AsFusion: oid-key violations raised while building
/// the answer become fusion conflicts.
Status AsFusion(Status st) {
  if (st.ok() || st.code() != StatusCode::kInvalidArgument) return st;
  return Status::FusionConflict(st.message());
}

/// A register row: column i is the value of the frame's vars[i]. Frames are
/// sorted by Term order, so lexicographic row comparison under BoundValue's
/// operator< equals the tree walker's std::map<Term, BoundValue> comparison
/// (every complete row binds exactly the frame's variable set).
using Row = std::vector<BoundValue>;

/// An object slot of the iterator pipeline: the candidate plus the database
/// it lives in (needed for subgraph bindings and member stepping).
struct Slot {
  const OemObject* obj = nullptr;
  const OemDatabase* db = nullptr;
};

/// One open iterator: where to resume, which candidate comes next, and how
/// far to unwind the bind trail before loading it.
struct Choice {
  int32_t pc = 0;
  size_t next = 0;
  size_t mark = 0;
  const OemDatabase* db = nullptr;
  /// kIterMembers candidates (owned; vector moves keep the buffer).
  std::vector<Oid> owned;
  /// kIterRoots candidates: points into the per-pc root cache, whose map
  /// nodes are address-stable.
  const std::vector<Oid>* cached = nullptr;

  const std::vector<Oid>& oids() const {
    return cached != nullptr ? *cached : owned;
  }
};

/// Subgraph-copy memo of one answer database: (source database, oid) pairs
/// already copied in full. Doubles as the BFS seen set when the
/// copy-elision pass armed a head (IrOp::d).
using CopyMemo = std::set<std::pair<const OemDatabase*, Oid>>;

/// \brief One execution of a program: lazily resolved sources, per-pc root
/// candidate caches, and materialized unit rows — all shared across the
/// program's segments, which is the compiled backend's leverage on plan
/// sets.
class Interp {
 public:
  Interp(const IrProgram& program, const SourceCatalog& catalog,
         const IrExecOptions& options)
      : p_(program),
        catalog_(catalog),
        options_(options),
        resolved_(program.sources.size(), nullptr),
        unit_rows_(program.units.size()),
        unit_done_(program.units.size(), false) {}

  /// Enumerates the segment's rows (sorted, deduplicated — the tree
  /// walker's final std::set<Assignment>) and runs the emit region once per
  /// row, in order, aborting on the first error exactly like EvaluateInto.
  Status RunSegment(const IrSegment& seg, OemDatabase* answer,
                    CopyMemo* memo) {
    std::set<Row> rows;
    TSLRW_RETURN_NOT_OK(RunMatch(seg.match_begin, seg.match_end,
                                 seg.frame_size, seg.slot_count,
                                 [&rows](const Row& r) { rows.insert(r); }));
    ObserveIf(options_.metrics, "ir.rows", rows.size());
    for (const Row& row : rows) {
      TSLRW_RETURN_NOT_OK(RunEmit(seg, row, answer, memo));
    }
    return Status::OK();
  }

 private:
  using Sink = std::function<void(const Row&)>;

  /// Resolves source pool entry \p idx against the catalog, once; "" means
  /// the default source, and a missing source fails with the catalog's
  /// NotFound — raised only if execution actually reaches an iterator over
  /// it, which is exactly when the tree walker's condition loop would have
  /// resolved it (the loop breaks once the frontier empties).
  Result<const OemDatabase*> Source(int32_t idx) {
    if (resolved_[idx] != nullptr) return resolved_[idx];
    const std::string& name = p_.sources[idx].empty()
                                  ? options_.default_source
                                  : p_.sources[idx];
    TSLRW_ASSIGN_OR_RETURN(const OemDatabase* db, catalog_.Find(name));
    resolved_[idx] = db;
    return db;
  }

  /// Candidate roots for the kIterRoots at \p pc, with the tree walker's
  /// constant-root-label prefilter applied; computed once per pc (the
  /// database is immutable during execution).
  const std::vector<Oid>& RootCandidates(int32_t pc, int32_t pattern_idx,
                                         const OemDatabase& db) {
    auto it = root_cache_.find(pc);
    if (it != root_cache_.end()) return it->second;
    const ObjectPattern& pattern = p_.patterns[pattern_idx];
    std::vector<Oid> roots;
    roots.reserve(db.roots().size());
    for (const Oid& root : db.roots()) {
      if (pattern.step == StepKind::kChild && pattern.label.is_atom()) {
        const OemObject* obj = db.Find(root);
        if (obj == nullptr || obj->label != pattern.label.atom_name()) {
          continue;
        }
      }
      roots.push_back(root);
    }
    return root_cache_.emplace(pc, std::move(roots)).first->second;
  }

  /// Materializes unit \p idx's rows on first use (an order-preserving
  /// multiset; the segment row set dedups later, like the tree walker's
  /// undeduplicated per-condition frontier).
  Status EnsureUnit(int32_t idx) {
    if (unit_done_[idx]) return Status::OK();
    unit_done_[idx] = true;
    const IrUnit& unit = p_.units[idx];
    std::vector<Row>& rows = unit_rows_[idx];
    TSLRW_RETURN_NOT_OK(RunMatch(unit.begin, unit.end, unit.frame_size,
                                 unit.slot_count,
                                 [&rows](const Row& r) { rows.push_back(r); }));
    CountIf(options_.metrics, "ir.units_materialized");
    ObserveIf(options_.metrics, "ir.unit_rows", rows.size());
    return Status::OK();
  }

  /// The backtracking match loop over ops [begin, end): iterator ops open
  /// choice points, match ops bind registers through the trail, emit ops
  /// hand the frame to \p sink and fail on purpose to enumerate the next
  /// row. Errors (unresolvable sources) abort the whole execution.
  Status RunMatch(int32_t begin, int32_t end, int32_t frame_size,
                  int32_t slot_count, const Sink& sink) {
    std::vector<BoundValue> frame(frame_size);
    std::vector<char> bound(frame_size, 0);
    std::vector<Slot> slots(slot_count);
    std::vector<int32_t> trail;
    std::vector<Choice> choices;

    auto undo_to = [&](size_t mark) {
      while (trail.size() > mark) {
        int32_t r = trail.back();
        trail.pop_back();
        bound[r] = 0;
        frame[r] = BoundValue();
      }
    };

    auto bind = [&](int32_t r, BoundValue value) -> bool {
      if (bound[r]) return frame[r] == value;
      frame[r] = std::move(value);
      bound[r] = 1;
      trail.push_back(r);
      return true;
    };

    // One-way term match against a ground term, exactly MatchTerm: atoms
    // compare, variables bind-or-compare, function terms recurse. No
    // scratch copy is needed — failure always backtracks to the innermost
    // choice point, whose trail mark precedes any partial bindings.
    std::function<bool(int32_t, const Term&)> match_term =
        [&](int32_t term_idx, const Term& ground) -> bool {
      const CompiledTerm& ct = p_.terms[term_idx];
      switch (ct.kind) {
        case TermKind::kAtom:
          return ct.term == ground;
        case TermKind::kVariable:
          return bind(ct.reg, BoundValue::FromTerm(ground));
        case TermKind::kFunction: {
          if (!ground.is_func() || ground.functor() != ct.term.functor() ||
              ground.args().size() != ct.args.size()) {
            return false;
          }
          for (size_t i = 0; i < ct.args.size(); ++i) {
            if (!match_term(ct.args[i], ground.args()[i])) return false;
          }
          return true;
        }
      }
      return false;
    };

    // Loads the choice's next viable candidate (skipping dangling oids and
    // mismatching join rows) into its slot/registers; false = exhausted.
    auto load_next = [&](Choice& ch) -> bool {
      const IrOp& op = p_.ops[ch.pc];
      if (op.code == IrOpCode::kJoinUnit) {
        const std::vector<Row>& rows = unit_rows_[op.a];
        const std::vector<int32_t>& map = p_.bindmaps[op.b];
        while (ch.next < rows.size()) {
          const Row& row = rows[ch.next++];
          bool ok = true;
          for (size_t j = 0; j < row.size(); ++j) {
            if (map[j] < 0) continue;
            if (!bind(map[j], row[j])) {
              ok = false;
              break;
            }
          }
          if (ok) return true;
          undo_to(ch.mark);
        }
        return false;
      }
      const std::vector<Oid>& oids = ch.oids();
      while (ch.next < oids.size()) {
        const Oid& oid = oids[ch.next++];
        const OemObject* obj = ch.db->Find(oid);
        if (obj == nullptr) continue;  // MatchObject: dangling oid, no match
        slots[op.c].obj = obj;
        slots[op.c].db = ch.db;
        return true;
      }
      return false;
    };

    int32_t pc = begin;
    bool failed = false;
    for (;;) {
      if (failed) {
        failed = false;
        bool resumed = false;
        while (!choices.empty()) {
          Choice& ch = choices.back();
          undo_to(ch.mark);
          if (load_next(ch)) {
            pc = ch.pc + 1;
            resumed = true;
            break;
          }
          choices.pop_back();
        }
        if (!resumed) return Status::OK();  // enumeration complete
        continue;
      }
      if (pc < begin || pc >= end) {
        return Status::Internal("match pipeline ran off its op range");
      }
      const IrOp& op = p_.ops[pc];
      switch (op.code) {
        case IrOpCode::kIterRoots: {
          TSLRW_ASSIGN_OR_RETURN(const OemDatabase* db, Source(op.a));
          Choice ch;
          ch.pc = pc;
          ch.mark = trail.size();
          ch.db = db;
          ch.cached = &RootCandidates(pc, op.b, *db);
          choices.push_back(std::move(ch));
          if (load_next(choices.back())) {
            ++pc;
          } else {
            choices.pop_back();
            failed = true;
          }
          break;
        }
        case IrOpCode::kIterMembers: {
          const Slot& parent = slots[op.a];
          Choice ch;
          ch.pc = pc;
          ch.mark = trail.size();
          ch.db = parent.db;
          ch.owned = StepCandidates(p_.patterns[op.b], *parent.obj,
                                    *parent.db);
          choices.push_back(std::move(ch));
          if (load_next(choices.back())) {
            ++pc;
          } else {
            choices.pop_back();
            failed = true;
          }
          break;
        }
        case IrOpCode::kJoinUnit: {
          TSLRW_RETURN_NOT_OK(EnsureUnit(op.a));
          Choice ch;
          ch.pc = pc;
          ch.mark = trail.size();
          choices.push_back(std::move(ch));
          if (load_next(choices.back())) {
            ++pc;
          } else {
            choices.pop_back();
            failed = true;
          }
          break;
        }
        case IrOpCode::kMatchOid:
          if (match_term(op.a, slots[op.b].obj->oid)) {
            ++pc;
          } else {
            failed = true;
          }
          break;
        case IrOpCode::kMatchLabel:
          if (match_term(op.a, Term::MakeAtom(slots[op.b].obj->label))) {
            ++pc;
          } else {
            failed = true;
          }
          break;
        case IrOpCode::kMatchValueTerm: {
          const Slot& slot = slots[op.b];
          if (slot.obj->is_atomic()) {
            if (match_term(op.a, Term::MakeAtom(slot.obj->value.atom()))) {
              ++pc;
            } else {
              failed = true;
            }
            break;
          }
          // Set value: only a variable binds to a subgraph (\S2); constants
          // and function terms denote atomic data and never match.
          const CompiledTerm& ct = p_.terms[op.a];
          if (ct.kind == TermKind::kVariable &&
              bind(ct.reg,
                   BoundValue::FromSetValue(slot.db, slot.obj->oid))) {
            ++pc;
          } else {
            failed = true;
          }
          break;
        }
        case IrOpCode::kRequireSet:
          if (slots[op.a].obj->is_atomic()) {
            failed = true;
          } else {
            ++pc;
          }
          break;
        case IrOpCode::kEmitRow:
        case IrOpCode::kEmitUnitRow:
          sink(frame);
          failed = true;  // backtrack into the next satisfying row
          break;
        default:
          return Status::Internal(
              StrCat("op ", IrOpName(op.code), " in a match region"));
      }
    }
  }

  /// Applies the row to a head term; mirrors eval's GroundTerm, including
  /// its error text (a head-only variable compiles to reg -1).
  Result<Term> GroundIrTerm(int32_t term_idx, const Row& row) {
    const CompiledTerm& ct = p_.terms[term_idx];
    switch (ct.kind) {
      case TermKind::kAtom:
        return ct.term;
      case TermKind::kVariable: {
        if (ct.reg < 0) {
          return Status::IllFormedQuery(StrCat("unsafe head variable ",
                                               ct.term.ToString(),
                                               " has no binding"));
        }
        const BoundValue& value = row[ct.reg];
        if (!value.is_term()) {
          return Status::IllFormedQuery(
              StrCat("variable ", ct.term.ToString(),
                     " is bound to a subgraph but used where an atomic term "
                     "is required"));
        }
        return value.term();
      }
      case TermKind::kFunction: {
        std::vector<Term> args;
        args.reserve(ct.args.size());
        for (int32_t a : ct.args) {
          TSLRW_ASSIGN_OR_RETURN(Term ga, GroundIrTerm(a, row));
          args.push_back(std::move(ga));
        }
        return Term::MakeFunc(ct.term.functor(), std::move(args));
      }
    }
    return Status::Internal("unreachable term kind");
  }

  /// CopySubgraph with an optional cross-call memo. Without a memo this is
  /// the tree walker's BFS verbatim. With one, subgraphs already copied
  /// into this answer are skipped: a re-walk would replay byte-identical
  /// Put/AddEdge calls (sources are immutable during execution and fusion
  /// is idempotent), so eliding it changes nothing observable.
  Status CopySubgraphIr(const OemDatabase& src, const Oid& oid,
                        OemDatabase* answer, CopyMemo* memo) {
    std::deque<Oid> work{oid};
    std::set<Oid> local;
    auto first_visit = [&](const Oid& cur) {
      if (memo != nullptr) return memo->insert({&src, cur}).second;
      return local.insert(cur).second;
    };
    while (!work.empty()) {
      Oid cur = work.front();
      work.pop_front();
      if (!first_visit(cur)) continue;
      const OemObject* obj = src.Find(cur);
      if (obj == nullptr) {
        return Status::Internal(StrCat("source object ", cur.ToString(),
                                       " vanished during copy"));
      }
      if (obj->is_atomic()) {
        TSLRW_RETURN_NOT_OK(
            AsFusion(answer->PutAtomic(cur, obj->label, obj->value.atom())));
      } else {
        TSLRW_RETURN_NOT_OK(AsFusion(answer->PutSet(cur, obj->label)));
        for (const Oid& c : obj->value.children()) {
          TSLRW_RETURN_NOT_OK(answer->AddEdge(cur, c));
          work.push_back(c);
        }
      }
    }
    return Status::OK();
  }

  /// Instantiates one compiled head object under the row; mirrors eval's
  /// BuildObject shape and error order exactly.
  Result<Oid> BuildIrObject(int32_t head_idx, const Row& row,
                            OemDatabase* answer, CopyMemo* memo) {
    const CompiledHead& head = p_.heads[head_idx];
    TSLRW_ASSIGN_OR_RETURN(Term oid, GroundIrTerm(head.oid, row));
    TSLRW_ASSIGN_OR_RETURN(Term label_term, GroundIrTerm(head.label, row));
    if (!label_term.is_atom()) {
      return Status::IllFormedQuery(StrCat(
          "head label instantiates to non-atom ", label_term.ToString()));
    }
    const std::string& label = label_term.atom_name();

    if (head.is_set) {
      TSLRW_RETURN_NOT_OK(AsFusion(answer->PutSet(oid, label)));
      for (int32_t m : head.members) {
        TSLRW_ASSIGN_OR_RETURN(Oid child, BuildIrObject(m, row, answer, memo));
        TSLRW_RETURN_NOT_OK(answer->AddEdge(oid, child));
      }
      return oid;
    }

    const CompiledTerm& vt = p_.terms[head.value];
    if (vt.kind == TermKind::kVariable) {
      if (vt.reg < 0) {
        return Status::IllFormedQuery(StrCat("unsafe head variable ",
                                             vt.term.ToString(),
                                             " has no binding"));
      }
      const BoundValue& value = row[vt.reg];
      if (value.is_set_value()) {
        const OemDatabase& src = *value.db();
        const OemObject* owner = src.Find(value.owner());
        if (owner == nullptr || owner->is_atomic()) {
          return Status::Internal(
              "subgraph binding owner is not a set object");
        }
        TSLRW_RETURN_NOT_OK(AsFusion(answer->PutSet(oid, label)));
        for (const Oid& c : owner->value.children()) {
          TSLRW_RETURN_NOT_OK(CopySubgraphIr(src, c, answer, memo));
          TSLRW_RETURN_NOT_OK(answer->AddEdge(oid, c));
        }
        return oid;
      }
      TSLRW_RETURN_NOT_OK(AsFusion(
          answer->PutAtomic(oid, label, value.term().atom_name())));
      return oid;
    }
    if (vt.kind == TermKind::kAtom) {
      TSLRW_RETURN_NOT_OK(
          AsFusion(answer->PutAtomic(oid, label, vt.term.atom_name())));
      return oid;
    }
    return Status::IllFormedQuery(
        StrCat("head value ", vt.term.ToString(),
               " is a function term; OEM values are atomic data or sets"));
  }

  /// Runs the emit region for one row: build the head, root it, branch out.
  Status RunEmit(const IrSegment& seg, const Row& row, OemDatabase* answer,
                 CopyMemo* memo) {
    int32_t pc = seg.emit_begin;
    Oid scratch;
    while (pc < seg.emit_end) {
      const IrOp& op = p_.ops[pc];
      switch (op.code) {
        case IrOpCode::kEmitHead: {
          TSLRW_ASSIGN_OR_RETURN(
              scratch,
              BuildIrObject(op.a, row, answer, op.d != 0 ? memo : nullptr));
          ++pc;
          break;
        }
        case IrOpCode::kFuseRoot:
          TSLRW_RETURN_NOT_OK(answer->AddRoot(scratch));
          ++pc;
          break;
        case IrOpCode::kBranch:
          pc = op.a;
          break;
        default:
          return Status::Internal(
              StrCat("op ", IrOpName(op.code), " in an emit region"));
      }
    }
    return Status::OK();
  }

  const IrProgram& p_;
  const SourceCatalog& catalog_;
  const IrExecOptions& options_;
  std::vector<const OemDatabase*> resolved_;
  std::map<int32_t, std::vector<Oid>> root_cache_;
  std::vector<std::vector<Row>> unit_rows_;
  std::vector<char> unit_done_;
};

}  // namespace

Result<OemDatabase> ExecuteIr(const IrProgram& program,
                              const SourceCatalog& catalog,
                              const IrExecOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  OemDatabase answer(options.answer_name.empty() ? program.default_name
                                                 : options.answer_name);
  Interp interp(program, catalog, options);
  CopyMemo memo;
  for (const IrSegment& seg : program.segments) {
    TSLRW_RETURN_NOT_OK(interp.RunSegment(seg, &answer, &memo));
  }
  CountIf(options.metrics, "ir.execs");
  ObserveIf(options.metrics, "ir.exec_wall_us",
            static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count()));
  return answer;
}

Result<std::vector<OemDatabase>> ExecuteIrPerSegment(
    const IrProgram& program, const SourceCatalog& catalog,
    const IrExecOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  Interp interp(program, catalog, options);
  std::vector<OemDatabase> answers;
  answers.reserve(program.segments.size());
  for (const IrSegment& seg : program.segments) {
    OemDatabase answer(options.answer_name.empty() ? seg.rule_name
                                                   : options.answer_name);
    CopyMemo memo;  // the memo is per answer database
    TSLRW_RETURN_NOT_OK(interp.RunSegment(seg, &answer, &memo));
    answers.push_back(std::move(answer));
  }
  CountIf(options.metrics, "ir.execs");
  ObserveIf(options.metrics, "ir.exec_wall_us",
            static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count()));
  return answers;
}

}  // namespace tslrw
