#include "ir/compiler.h"

#include <chrono>
#include <map>
#include <set>
#include <utility>

#include "common/string_util.h"
#include "ir/lowering.h"
#include "ir/passes.h"
#include "tsl/canonical.h"

namespace tslrw {

namespace {

IrOp Op(IrOpCode code, int32_t a = -1, int32_t b = -1, int32_t c = -1,
        int32_t d = 0) {
  IrOp op;
  op.code = code;
  op.a = a;
  op.b = b;
  op.c = c;
  op.d = d;
  return op;
}

/// Lowers terms, head patterns, and condition match pipelines against one
/// frame (a segment's body-variable registers or a unit's local registers).
class Lowerer {
 public:
  Lowerer(IrProgram* program, const std::map<Term, int32_t>& regs,
          int32_t* slot_count)
      : p_(program), regs_(regs), slot_count_(slot_count) {}

  int32_t LowerTerm(const Term& t) {
    CompiledTerm ct;
    ct.kind = t.kind();
    ct.term = t;
    if (t.is_var()) {
      auto it = regs_.find(t);
      ct.reg = it == regs_.end() ? -1 : it->second;
    } else if (t.is_func()) {
      ct.args.reserve(t.args().size());
      for (const Term& a : t.args()) ct.args.push_back(LowerTerm(a));
    }
    p_->terms.push_back(std::move(ct));
    return static_cast<int32_t>(p_->terms.size()) - 1;
  }

  int32_t LowerHead(const ObjectPattern& pattern) {
    CompiledHead h;
    h.oid = LowerTerm(pattern.oid);
    h.label = LowerTerm(pattern.label);
    if (pattern.value.is_set()) {
      h.is_set = true;
      h.members.reserve(pattern.value.set().size());
      for (const ObjectPattern& m : pattern.value.set()) {
        h.members.push_back(LowerHead(m));
      }
    } else {
      h.value = LowerTerm(pattern.value.term());
    }
    p_->heads.push_back(std::move(h));
    return static_cast<int32_t>(p_->heads.size()) - 1;
  }

  int32_t InternPattern(const ObjectPattern& pattern) {
    p_->patterns.push_back(pattern);
    return static_cast<int32_t>(p_->patterns.size()) - 1;
  }

  /// Match ops for one object already loaded in \p slot; mirrors the tree
  /// walker's MatchObject order: oid, label (unless a `**` step), value.
  void LowerMatch(const ObjectPattern& pattern, int32_t slot) {
    p_->ops.push_back(Op(IrOpCode::kMatchOid, LowerTerm(pattern.oid), slot));
    if (pattern.step != StepKind::kDescendant) {
      p_->ops.push_back(
          Op(IrOpCode::kMatchLabel, LowerTerm(pattern.label), slot));
    }
    if (pattern.value.is_term()) {
      p_->ops.push_back(Op(IrOpCode::kMatchValueTerm,
                           LowerTerm(pattern.value.term()), slot));
      return;
    }
    p_->ops.push_back(Op(IrOpCode::kRequireSet, slot));
    for (const ObjectPattern& member : pattern.value.set()) {
      int32_t member_slot = (*slot_count_)++;
      p_->ops.push_back(Op(IrOpCode::kIterMembers, slot,
                           InternPattern(member), member_slot));
      LowerMatch(member, member_slot);
    }
  }

  /// One top-level condition: iterate the source's roots, then match.
  void LowerConditionMatch(const Condition& cond) {
    int32_t slot = (*slot_count_)++;
    p_->ops.push_back(Op(IrOpCode::kIterRoots,
                         InternIrSource(p_, cond.source),
                         InternPattern(cond.pattern), slot));
    LowerMatch(cond.pattern, slot);
  }

 private:
  IrProgram* p_;
  const std::map<Term, int32_t>& regs_;
  int32_t* slot_count_;
};

void CanonWalkTerm(const Term& t, std::map<Term, std::string>* names) {
  if (t.is_var()) {
    if (names->find(t) == names->end()) {
      const char* prefix = t.var_kind() == VarKind::kObjectId ? "O" : "C";
      names->emplace(t, StrCat(prefix, names->size()));
    }
    return;
  }
  if (t.is_func()) {
    for (const Term& a : t.args()) CanonWalkTerm(a, names);
  }
}

void CanonWalkPattern(const ObjectPattern& pattern,
                      std::map<Term, std::string>* names) {
  CanonWalkTerm(pattern.oid, names);
  CanonWalkTerm(pattern.label, names);
  if (pattern.value.is_term()) {
    CanonWalkTerm(pattern.value.term(), names);
    return;
  }
  for (const ObjectPattern& m : pattern.value.set()) {
    CanonWalkPattern(m, names);
  }
}

Term CanonRenameTerm(const Term& t,
                     const std::map<Term, std::string>& names) {
  if (t.is_var()) return Term::MakeVar(names.at(t), t.var_kind());
  if (t.is_func()) {
    std::vector<Term> args;
    args.reserve(t.args().size());
    for (const Term& a : t.args()) args.push_back(CanonRenameTerm(a, names));
    return Term::MakeFunc(t.functor(), std::move(args));
  }
  return t;
}

ObjectPattern CanonRenamePattern(const ObjectPattern& pattern,
                                 const std::map<Term, std::string>& names) {
  ObjectPattern out;
  out.oid = CanonRenameTerm(pattern.oid, names);
  out.label = CanonRenameTerm(pattern.label, names);
  out.step = pattern.step;
  if (pattern.value.is_term()) {
    out.value = PatternValue::FromTerm(
        CanonRenameTerm(pattern.value.term(), names));
    return out;
  }
  SetPattern members;
  members.reserve(pattern.value.set().size());
  for (const ObjectPattern& m : pattern.value.set()) {
    members.push_back(CanonRenamePattern(m, names));
  }
  out.value = PatternValue::FromSet(std::move(members));
  return out;
}

}  // namespace

std::map<Term, std::string> CanonicalConditionNames(
    const Condition& condition) {
  std::map<Term, std::string> names;
  CanonWalkPattern(condition.pattern, &names);
  return names;
}

uint64_t ConditionFingerprint(const Condition& condition) {
  std::map<Term, std::string> names = CanonicalConditionNames(condition);
  ObjectPattern renamed = CanonRenamePattern(condition.pattern, names);
  return StableFingerprint(StrCat(renamed.ToString(), "@", condition.source));
}

int32_t InternIrSource(IrProgram* program, const std::string& source) {
  for (size_t i = 0; i < program->sources.size(); ++i) {
    if (program->sources[i] == source) return static_cast<int32_t>(i);
  }
  program->sources.push_back(source);
  return static_cast<int32_t>(program->sources.size()) - 1;
}

int32_t LowerConditionUnit(IrProgram* program, const Condition& condition) {
  IrUnit unit;
  std::set<Term> vars;
  condition.pattern.CollectVariables(&vars);
  unit.vars.assign(vars.begin(), vars.end());
  unit.frame_size = static_cast<int32_t>(unit.vars.size());
  std::map<Term, std::string> canon = CanonicalConditionNames(condition);
  unit.col_canon.reserve(unit.vars.size());
  for (const Term& v : unit.vars) unit.col_canon.push_back(canon.at(v));
  unit.source = InternIrSource(program, condition.source);
  unit.fingerprint = ConditionFingerprint(condition);

  std::map<Term, int32_t> regs;
  for (size_t i = 0; i < unit.vars.size(); ++i) {
    regs.emplace(unit.vars[i], static_cast<int32_t>(i));
  }
  unit.begin = static_cast<int32_t>(program->ops.size());
  Lowerer lowerer(program, regs, &unit.slot_count);
  lowerer.LowerConditionMatch(condition);
  int32_t unit_idx = static_cast<int32_t>(program->units.size());
  program->ops.push_back(Op(IrOpCode::kEmitUnitRow, unit_idx));
  unit.end = static_cast<int32_t>(program->ops.size());
  program->units.push_back(std::move(unit));
  return unit_idx;
}

namespace {

std::shared_ptr<const IrProgram> CompileRuleList(
    const std::vector<TslQuery>& rules, const IrPassOptions& passes,
    MetricRegistry* metrics) {
  const auto start = std::chrono::steady_clock::now();
  auto program = std::make_shared<IrProgram>();
  if (!rules.empty()) program->default_name = rules.front().name;
  for (const TslQuery& q : rules) {
    IrSegment seg;
    seg.rule_name = q.name;
    std::set<Term> body_vars = q.BodyVariables();
    seg.vars.assign(body_vars.begin(), body_vars.end());
    seg.frame_size = static_cast<int32_t>(seg.vars.size());
    std::map<Term, int32_t> regs;
    for (size_t i = 0; i < seg.vars.size(); ++i) {
      regs.emplace(seg.vars[i], static_cast<int32_t>(i));
    }
    Lowerer lowerer(program.get(), regs, &seg.slot_count);
    const int32_t seg_idx = static_cast<int32_t>(program->segments.size());
    seg.match_begin = static_cast<int32_t>(program->ops.size());
    for (const Condition& cond : q.body) {
      IrCondBlock block;
      block.condition = static_cast<int32_t>(program->conditions.size());
      program->conditions.push_back(cond);
      block.begin = static_cast<int32_t>(program->ops.size());
      lowerer.LowerConditionMatch(cond);
      block.end = static_cast<int32_t>(program->ops.size());
      seg.blocks.push_back(block);
    }
    program->ops.push_back(Op(IrOpCode::kEmitRow, seg_idx));
    seg.match_end = static_cast<int32_t>(program->ops.size());
    seg.emit_begin = seg.match_end;
    program->ops.push_back(Op(IrOpCode::kEmitHead, lowerer.LowerHead(q.head)));
    program->ops.push_back(Op(IrOpCode::kFuseRoot));
    program->ops.push_back(
        Op(IrOpCode::kBranch, static_cast<int32_t>(program->ops.size()) + 1));
    seg.emit_end = static_cast<int32_t>(program->ops.size());
    program->segments.push_back(std::move(seg));
  }
  RunIrPasses(passes, program.get(), metrics);
  if (metrics != nullptr) {
    CountIf(metrics, "ir.compiles");
    ObserveIf(metrics, "ir.ops", program->ops.size());
    ObserveIf(metrics, "ir.compile_wall_us",
              static_cast<uint64_t>(
                  std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count()));
  }
  return program;
}

}  // namespace

Result<std::shared_ptr<const IrProgram>> PlanCompiler::Compile(
    const TslQuery& query) const {
  return CompileRuleList({query}, passes_, metrics_);
}

Result<std::shared_ptr<const IrProgram>> PlanCompiler::Compile(
    const TslRuleSet& rules) const {
  return CompileRuleList(rules.rules, passes_, metrics_);
}

Result<std::shared_ptr<const IrProgram>> PlanCompiler::CompilePlans(
    const std::vector<TslQuery>& plans) const {
  return CompileRuleList(plans, passes_, metrics_);
}

}  // namespace tslrw
