#ifndef TSLRW_IR_PASSES_H_
#define TSLRW_IR_PASSES_H_

#include "ir/compiler.h"
#include "ir/ir.h"
#include "obs/metrics.h"

namespace tslrw {

/// \brief Runs the enabled optimization passes over a freshly lowered
/// program, in their fixed order (docs/IR.md):
///
///   1. hoist-invariant-submatches — every inline condition block becomes a
///      materialized match unit plus one kJoinUnit op;
///   2. common-subplan-elimination — units with equal α-invariant condition
///      fingerprints merge, their dead bodies are swept, and every join's
///      bindmap is remapped through the canonical column names;
///   3. copy-elision — emit heads that can copy subgraphs are flagged to
///      use the per-answer (database, oid) copy memo.
///
/// Each pass appends an IrPassStat (disabled passes record a "off" entry),
/// so dumps always show the full pipeline. Every configuration produces
/// byte-identical answers; only the work done differs.
void RunIrPasses(const IrPassOptions& passes, IrProgram* program,
                 MetricRegistry* metrics);

}  // namespace tslrw

#endif  // TSLRW_IR_PASSES_H_
