#include "ir/ir.h"

#include <algorithm>

#include "common/string_util.h"

namespace tslrw {

const char* IrOpName(IrOpCode code) {
  switch (code) {
    case IrOpCode::kIterRoots: return "iter_roots";
    case IrOpCode::kIterMembers: return "iter_members";
    case IrOpCode::kJoinUnit: return "join_unit";
    case IrOpCode::kMatchOid: return "match_oid";
    case IrOpCode::kMatchLabel: return "match_label";
    case IrOpCode::kMatchValueTerm: return "match_value";
    case IrOpCode::kRequireSet: return "require_set";
    case IrOpCode::kEmitRow: return "emit_row";
    case IrOpCode::kEmitUnitRow: return "emit_unit_row";
    case IrOpCode::kEmitHead: return "emit_head";
    case IrOpCode::kFuseRoot: return "fuse_root";
    case IrOpCode::kBranch: return "branch";
  }
  return "?";
}

namespace {

std::string TermText(const IrProgram& p, int32_t idx) {
  if (idx < 0) return "?";
  const CompiledTerm& ct = p.terms[idx];
  if (ct.kind == TermKind::kVariable) {
    return StrCat(ct.term.ToString(), ":r", ct.reg);
  }
  return ct.term.ToString();
}

std::string SourceText(const IrProgram& p, int32_t idx) {
  const std::string& s = p.sources[idx];
  return s.empty() ? "@<default>" : StrCat("@", s);
}

void RenderOps(const IrProgram& p, int32_t begin, int32_t end,
               std::string* out) {
  for (int32_t pc = begin; pc < end; ++pc) {
    const IrOp& op = p.ops[pc];
    StrAppend(out, "    ", pc, ": ", IrOpName(op.code));
    switch (op.code) {
      case IrOpCode::kIterRoots:
        StrAppend(out, " ", SourceText(p, op.a), " -> s", op.c);
        break;
      case IrOpCode::kIterMembers:
        StrAppend(out, " s", op.a, " step=",
                  p.patterns[op.b].step == StepKind::kChild      ? "child"
                  : p.patterns[op.b].step == StepKind::kClosure  ? "closure"
                                                                 : "descendant",
                  " -> s", op.c);
        break;
      case IrOpCode::kJoinUnit: {
        StrAppend(out, " u", op.a, " [");
        const std::vector<int32_t>& map = p.bindmaps[op.b];
        for (size_t i = 0; i < map.size(); ++i) {
          StrAppend(out, i == 0 ? "" : ",", "r", map[i]);
        }
        StrAppend(out, "]");
        break;
      }
      case IrOpCode::kMatchOid:
      case IrOpCode::kMatchLabel:
      case IrOpCode::kMatchValueTerm:
        StrAppend(out, " ", TermText(p, op.a), " s", op.b);
        break;
      case IrOpCode::kRequireSet:
        StrAppend(out, " s", op.a);
        break;
      case IrOpCode::kEmitRow:
      case IrOpCode::kEmitUnitRow:
        break;
      case IrOpCode::kEmitHead:
        StrAppend(out, " h", op.a, op.d != 0 ? " elide" : "");
        break;
      case IrOpCode::kFuseRoot:
        break;
      case IrOpCode::kBranch:
        StrAppend(out, " -> ", op.a);
        break;
    }
    StrAppend(out, "\n");
  }
}

void RenderFrame(const std::vector<Term>& vars, std::string* out) {
  StrAppend(out, "regs:");
  for (size_t i = 0; i < vars.size(); ++i) {
    StrAppend(out, " r", i, "=", vars[i].ToString());
  }
  if (vars.empty()) StrAppend(out, " (none)");
  StrAppend(out, "\n");
}

}  // namespace

std::string Disassemble(const IrProgram& p) {
  std::string out;
  StrAppend(&out, "program: ", p.ops.size(), " op(s), ", p.segments.size(),
            " segment(s), ", p.units.size(), " unit(s)\n");
  for (size_t s = 0; s < p.segments.size(); ++s) {
    const IrSegment& seg = p.segments[s];
    StrAppend(&out, "segment ", s,
              seg.rule_name.empty() ? "" : StrCat(" (", seg.rule_name, ")"),
              "  ");
    RenderFrame(seg.vars, &out);
    StrAppend(&out, "  match:\n");
    RenderOps(p, seg.match_begin, seg.match_end, &out);
    StrAppend(&out, "  emit:\n");
    RenderOps(p, seg.emit_begin, seg.emit_end, &out);
  }
  for (size_t u = 0; u < p.units.size(); ++u) {
    const IrUnit& unit = p.units[u];
    if (unit.begin == unit.end) continue;  // merged away by CSE
    StrAppend(&out, "unit ", u, " ", SourceText(p, unit.source),
              " fp=", unit.fingerprint, "  ");
    RenderFrame(unit.vars, &out);
    RenderOps(p, unit.begin, unit.end, &out);
  }
  return out;
}

std::string PassStatsTable(const IrProgram& p) {
  std::string out =
      "pass                        ops before  ops after  units    note\n";
  for (const IrPassStat& st : p.pass_stats) {
    std::string pass = st.pass;
    pass.resize(std::max<size_t>(pass.size(), 27), ' ');
    std::string before = StrCat(st.ops_before);
    before.insert(0, before.size() < 10 ? 10 - before.size() : 0, ' ');
    std::string after = StrCat(st.ops_after);
    after.insert(0, after.size() < 9 ? 9 - after.size() : 0, ' ');
    std::string units = StrCat(st.units_before, "->", st.units_after);
    units.resize(std::max<size_t>(units.size(), 8), ' ');
    StrAppend(&out, pass, " ", before, "  ", after, "  ", units, " ",
              st.note, "\n");
  }
  return out;
}

}  // namespace tslrw
