#include "ir/passes.h"

#include <map>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "ir/lowering.h"

namespace tslrw {

namespace {

/// Register index of \p var in the segment's sorted frame; -1 if absent
/// (cannot happen for condition variables, which are body variables).
int32_t SegmentReg(const IrSegment& seg, const Term& var) {
  for (size_t i = 0; i < seg.vars.size(); ++i) {
    if (seg.vars[i] == var) return static_cast<int32_t>(i);
  }
  return -1;
}

/// Copies the op range [begin, end) into \p out and returns the new range.
std::pair<int32_t, int32_t> CopyRange(const std::vector<IrOp>& ops,
                                      int32_t begin, int32_t end,
                                      std::vector<IrOp>* out) {
  int32_t nbegin = static_cast<int32_t>(out->size());
  out->insert(out->end(), ops.begin() + begin, ops.begin() + end);
  return {nbegin, static_cast<int32_t>(out->size())};
}

/// Fixes the emit region's terminating kBranch to the region's new end.
void RetargetEmitBranch(IrSegment* seg, std::vector<IrOp>* ops) {
  for (int32_t pc = seg->emit_begin; pc < seg->emit_end; ++pc) {
    if ((*ops)[pc].code == IrOpCode::kBranch) (*ops)[pc].a = seg->emit_end;
  }
}

/// Pass 1: hoist every inline condition block into a materialized match
/// unit, replacing the block with one kJoinUnit op. The unit matches the
/// condition from scratch; the join compares already-bound registers with
/// BoundValue equality — exactly the checks the inline pipeline would have
/// made at each variable occurrence — so the surviving (outer, row)
/// combinations are the inline extensions, one for one.
void HoistPass(IrProgram* p, MetricRegistry* metrics) {
  IrPassStat stat;
  stat.pass = "hoist-invariant-submatches";
  stat.ops_before = p->ops.size();
  stat.units_before = p->units.size();

  // Lower one unit per condition block first (unit ops append to p->ops;
  // they are copied into the rebuilt vector below and the originals
  // dropped).
  std::vector<std::vector<int32_t>> seg_units(p->segments.size());
  std::vector<std::vector<int32_t>> seg_maps(p->segments.size());
  for (size_t s = 0; s < p->segments.size(); ++s) {
    IrSegment& seg = p->segments[s];
    for (const IrCondBlock& block : seg.blocks) {
      int32_t unit_idx =
          LowerConditionUnit(p, p->conditions[block.condition]);
      const IrUnit& unit = p->units[unit_idx];
      std::vector<int32_t> bindmap;
      bindmap.reserve(unit.vars.size());
      for (const Term& v : unit.vars) bindmap.push_back(SegmentReg(seg, v));
      p->bindmaps.push_back(std::move(bindmap));
      seg_units[s].push_back(unit_idx);
      seg_maps[s].push_back(static_cast<int32_t>(p->bindmaps.size()) - 1);
    }
  }

  std::vector<IrOp> nops;
  nops.reserve(p->ops.size());
  for (size_t s = 0; s < p->segments.size(); ++s) {
    IrSegment& seg = p->segments[s];
    seg.match_begin = static_cast<int32_t>(nops.size());
    for (size_t b = 0; b < seg.blocks.size(); ++b) {
      IrCondBlock& block = seg.blocks[b];
      block.begin = static_cast<int32_t>(nops.size());
      IrOp join;
      join.code = IrOpCode::kJoinUnit;
      join.a = seg_units[s][b];
      join.b = seg_maps[s][b];
      nops.push_back(join);
      block.end = static_cast<int32_t>(nops.size());
    }
    IrOp emit_row;
    emit_row.code = IrOpCode::kEmitRow;
    emit_row.a = static_cast<int32_t>(s);
    nops.push_back(emit_row);
    seg.match_end = static_cast<int32_t>(nops.size());
    std::pair<int32_t, int32_t> emit =
        CopyRange(p->ops, seg.emit_begin, seg.emit_end, &nops);
    seg.emit_begin = emit.first;
    seg.emit_end = emit.second;
    RetargetEmitBranch(&seg, &nops);
  }
  for (IrUnit& unit : p->units) {
    std::pair<int32_t, int32_t> range =
        CopyRange(p->ops, unit.begin, unit.end, &nops);
    unit.begin = range.first;
    unit.end = range.second;
  }
  p->ops = std::move(nops);

  stat.ops_after = p->ops.size();
  stat.units_after = p->units.size();
  stat.note = StrCat("hoisted ", p->units.size(), " condition(s)");
  p->pass_stats.push_back(std::move(stat));
  CountIf(metrics, "ir.units_hoisted", p->units.size());
}

/// Pass 2: merge units with equal α-invariant fingerprints. The join's
/// bindmap is remapped through the canonical column names (the renaming is
/// first-occurrence over an identical pattern walk, so equal fingerprints
/// give a column bijection), and the dead unit bodies are swept from the
/// op vector.
void CsePass(IrProgram* p, MetricRegistry* metrics) {
  IrPassStat stat;
  stat.pass = "common-subplan-elim";
  stat.ops_before = p->ops.size();
  stat.units_before = p->units.size();

  std::map<uint64_t, int32_t> first_by_fp;
  std::vector<int32_t> redirect(p->units.size());
  size_t live_units = 0;
  for (size_t u = 0; u < p->units.size(); ++u) {
    auto [it, inserted] =
        first_by_fp.emplace(p->units[u].fingerprint, static_cast<int32_t>(u));
    redirect[u] = it->second;
    if (inserted) ++live_units;
  }
  for (IrOp& op : p->ops) {
    if (op.code != IrOpCode::kJoinUnit || redirect[op.a] == op.a) continue;
    const IrUnit& from = p->units[op.a];
    const IrUnit& to = p->units[redirect[op.a]];
    const std::vector<int32_t>& old_map = p->bindmaps[op.b];
    std::vector<int32_t> remapped(to.vars.size(), -1);
    for (size_t j = 0; j < to.vars.size(); ++j) {
      for (size_t k = 0; k < from.vars.size(); ++k) {
        if (from.col_canon[k] == to.col_canon[j]) {
          remapped[j] = old_map[k];
          break;
        }
      }
    }
    p->bindmaps.push_back(std::move(remapped));
    op.a = redirect[op.a];
    op.b = static_cast<int32_t>(p->bindmaps.size()) - 1;
  }

  // Sweep dead unit bodies: rebuild the op vector keeping segment regions
  // and live units only.
  std::vector<IrOp> nops;
  nops.reserve(p->ops.size());
  for (size_t s = 0; s < p->segments.size(); ++s) {
    IrSegment& seg = p->segments[s];
    std::pair<int32_t, int32_t> match =
        CopyRange(p->ops, seg.match_begin, seg.match_end, &nops);
    int32_t shift = match.first - seg.match_begin;
    seg.match_begin = match.first;
    seg.match_end = match.second;
    for (IrCondBlock& block : seg.blocks) {
      block.begin += shift;
      block.end += shift;
    }
    std::pair<int32_t, int32_t> emit =
        CopyRange(p->ops, seg.emit_begin, seg.emit_end, &nops);
    seg.emit_begin = emit.first;
    seg.emit_end = emit.second;
    RetargetEmitBranch(&seg, &nops);
  }
  size_t merged = 0;
  for (size_t u = 0; u < p->units.size(); ++u) {
    IrUnit& unit = p->units[u];
    if (redirect[u] != static_cast<int32_t>(u)) {
      unit.begin = unit.end = 0;  // merged away; joins point at the keeper
      ++merged;
      continue;
    }
    std::pair<int32_t, int32_t> range =
        CopyRange(p->ops, unit.begin, unit.end, &nops);
    unit.begin = range.first;
    unit.end = range.second;
  }
  p->ops = std::move(nops);

  stat.ops_after = p->ops.size();
  stat.units_after = live_units;
  stat.note = StrCat("merged ", merged, " unit(s)");
  p->pass_stats.push_back(std::move(stat));
  CountIf(metrics, "ir.units_shared", merged);
}

/// True when instantiating \p head can reach the subgraph-copy path: some
/// value position is a variable (only variables bind to set values).
bool HeadMayCopySubgraph(const IrProgram& p, int32_t head_idx) {
  const CompiledHead& h = p.heads[head_idx];
  if (h.is_set) {
    for (int32_t m : h.members) {
      if (HeadMayCopySubgraph(p, m)) return true;
    }
    return false;
  }
  return p.terms[h.value].kind == TermKind::kVariable;
}

/// Pass 3: flag emit heads that can copy subgraphs to consult the
/// per-answer (database, oid) memo. Re-copying an already-copied subgraph
/// replays identical PutAtomic/PutSet/AddEdge calls (fusion is idempotent),
/// so skipping the walk changes no answer bytes and no error behavior.
void CopyElisionPass(IrProgram* p, MetricRegistry* metrics) {
  IrPassStat stat;
  stat.pass = "copy-elision";
  stat.ops_before = p->ops.size();
  stat.ops_after = p->ops.size();
  stat.units_before = stat.units_after = p->units.size();
  size_t flagged = 0;
  for (IrOp& op : p->ops) {
    if (op.code != IrOpCode::kEmitHead) continue;
    if (HeadMayCopySubgraph(*p, op.a)) {
      op.d = 1;
      ++flagged;
    }
  }
  stat.note = StrCat("flagged ", flagged, " head(s)");
  p->pass_stats.push_back(std::move(stat));
  CountIf(metrics, "ir.heads_elidable", flagged);
}

void RecordOff(IrProgram* p, const char* name, const char* why) {
  IrPassStat stat;
  stat.pass = name;
  stat.ops_before = stat.ops_after = p->ops.size();
  stat.units_before = stat.units_after = p->units.size();
  stat.note = why;
  p->pass_stats.push_back(std::move(stat));
}

}  // namespace

void RunIrPasses(const IrPassOptions& passes, IrProgram* program,
                 MetricRegistry* metrics) {
  if (passes.hoist_invariant_submatches) {
    HoistPass(program, metrics);
  } else {
    RecordOff(program, "hoist-invariant-submatches", "off");
  }
  if (!passes.hoist_invariant_submatches) {
    RecordOff(program, "common-subplan-elim",
              passes.common_subplan_elimination ? "off (requires hoist)"
                                                : "off");
  } else if (passes.common_subplan_elimination) {
    CsePass(program, metrics);
  } else {
    RecordOff(program, "common-subplan-elim", "off");
  }
  if (passes.copy_elision) {
    CopyElisionPass(program, metrics);
  } else {
    RecordOff(program, "copy-elision", "off");
  }
}

}  // namespace tslrw
