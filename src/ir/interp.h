#ifndef TSLRW_IR_INTERP_H_
#define TSLRW_IR_INTERP_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "ir/ir.h"
#include "oem/database.h"
#include "obs/metrics.h"

namespace tslrw {

/// \brief Options for compiled-plan execution; mirrors EvalOptions so the
/// interpreter can stand in for the tree walker anywhere.
struct IrExecOptions {
  /// Source used for body conditions that carried no `@source` annotation.
  std::string default_source = "db";
  /// Name given to the answer database; defaults to the program's
  /// default_name (the front rule's name) — exactly Evaluate's rule.
  std::string answer_name;
  /// ir.* execution metrics; null disables instrumentation.
  MetricRegistry* metrics = nullptr;
};

/// \brief Executes every segment of \p program into one shared answer
/// database — byte-identical to Evaluate (single segment) and
/// EvaluateRuleSet (many segments): same answer graph, same roots, same
/// name, and the same error on the same input (docs/IR.md).
Result<OemDatabase> ExecuteIr(const IrProgram& program,
                              const SourceCatalog& catalog,
                              const IrExecOptions& options = {});

/// \brief Executes each segment into its own answer database (named after
/// its rule unless \p options.answer_name overrides) — byte-identical to
/// per-plan Evaluate calls over a rewritten plan set, but with hoisted
/// match units materialized once and shared across all segments, which is
/// where compiled execution beats the tree walker on large plan sets.
Result<std::vector<OemDatabase>> ExecuteIrPerSegment(
    const IrProgram& program, const SourceCatalog& catalog,
    const IrExecOptions& options = {});

}  // namespace tslrw

#endif  // TSLRW_IR_INTERP_H_
