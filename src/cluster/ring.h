#ifndef TSLRW_CLUSTER_RING_H_
#define TSLRW_CLUSTER_RING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tslrw {

/// \brief A consistent-hash ring over canonical-query fingerprints.
///
/// Each shard owns `vnodes_per_shard` virtual nodes placed at
/// Mix64(StableFingerprint("shard <s> vnode <v>")) — process-independent
/// by construction, so the same fingerprint routes to the same shard in
/// every process, on every platform, in every run (the routing analogue of
/// the plan-cache key contract in tsl/canonical.h). Mix64 (the splitmix64
/// finalizer) is applied to both vnode placements and looked-up keys:
/// FNV-1a fingerprints of near-identical strings cluster on the raw ring
/// (measured 53% of keys on one of four shards), and the finalizer's
/// avalanche restores the ±few-percent balance vnodes are supposed to buy.
///
/// The ring is immutable: a topology change (adding or removing shards)
/// builds a new ring, and the consistent-hashing guarantee is that only
/// keys whose owning arc changed move — about 1/(N+1) of them when growing
/// from N to N+1 shards — so the per-shard plan caches keep almost all of
/// their working set across a rebalance.
class HashRing {
 public:
  static constexpr size_t kDefaultVnodesPerShard = 64;

  explicit HashRing(size_t shards,
                    size_t vnodes_per_shard = kDefaultVnodesPerShard);

  /// The splitmix64 finalizer: a bijective avalanche mix, so distinct
  /// fingerprints stay distinct while nearby ones scatter uniformly.
  static uint64_t Mix64(uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  size_t shards() const { return shards_; }
  size_t vnodes_per_shard() const { return vnodes_; }

  /// The shard owning \p fingerprint: the first virtual node clockwise at
  /// or after it (wrapping at the top of the 64-bit space).
  size_t Route(uint64_t fingerprint) const;

  /// The first *live* shard clockwise from \p fingerprint, skipping every
  /// shard whose \p down flag is set — the deterministic failover walk: the
  /// owner when it is up, otherwise its ring successor, and so on. Returns
  /// shards() when every shard is down.
  size_t RouteLive(uint64_t fingerprint, const std::vector<bool>& down) const;

 private:
  struct Point {
    uint64_t hash;
    uint32_t shard;
  };

  /// Sorted by (hash, shard); ties broken by shard id so the order — and
  /// therefore every routing decision — is total and deterministic.
  std::vector<Point> points_;
  size_t shards_;
  size_t vnodes_;
};

}  // namespace tslrw

#endif  // TSLRW_CLUSTER_RING_H_
