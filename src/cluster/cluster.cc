#include "cluster/cluster.h"

#include <algorithm>
#include <utility>

#include "catalog/diff.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/canonical.h"
#include "tsl/canonical.h"

namespace tslrw {

namespace {

/// Sample size for the Resize retained-fraction measurement. The probes
/// are synthetic fingerprints (StableFingerprint of a fixed spelling), so
/// the measurement itself is deterministic across runs and platforms.
constexpr size_t kRebalanceProbes = 4096;

}  // namespace

PlanCacheStats ClusterStats::TotalPlanCache() const {
  PlanCacheStats total;
  for (const ServerStats& stats : shard) {
    total.hits += stats.plan_cache.hits;
    total.misses += stats.plan_cache.misses;
    total.evictions += stats.plan_cache.evictions;
    total.coalesced += stats.plan_cache.coalesced;
    total.inflight_now += stats.plan_cache.inflight_now;
    total.inflight_peak += stats.plan_cache.inflight_peak;
    total.entries += stats.plan_cache.entries;
  }
  return total;
}

std::string ClusterStats::ToString() const {
  std::string out = StrCat(
      "cluster: ", shards, " shard(s); ", routed, " routed, ", rerouted,
      " rerouted, ", resource_exhausted, " resource-exhausted; ",
      replications, " replication(s), ", rebalances,
      " rebalance(s)\n  cluster-wide ", TotalPlanCache().ToString(), "\n");
  for (size_t i = 0; i < shard.size(); ++i) {
    out += StrCat("shard ", i, ":\n", shard[i].ToString());
  }
  return out;
}

ShardRouter::ShardRouter(Mediator mediator, SourceCatalog catalog,
                         ClusterOptions options,
                         WrapperFactory wrapper_factory)
    : options_(std::move(options)),
      wrapper_factory_(std::move(wrapper_factory)),
      ring_(options_.shards, options_.vnodes_per_shard),
      template_mediator_(std::move(mediator)),
      template_catalog_(std::move(catalog)) {
  options_.shards = std::max<size_t>(options_.shards, 1);
  servers_.reserve(options_.shards);
  for (size_t i = 0; i < options_.shards; ++i) servers_.push_back(MakeShard());
  down_.assign(options_.shards, false);
}

ShardRouter::~ShardRouter() { Shutdown(); }

std::unique_ptr<QueryServer> ShardRouter::MakeShard() const {
  auto shard = std::make_unique<QueryServer>(
      Mediator(template_mediator_), SourceCatalog(template_catalog_),
      options_.server, wrapper_factory_);
  if (template_index_ != nullptr) {
    // Seeding a new shard from the replication templates: the index was
    // validated against this very mediator when it was attached, so the
    // re-attach cannot fail; ignore the status to keep MakeShard infallible.
    (void)shard->AttachCatalogIndex(template_index_);
  }
  return shard;
}

Result<ServeResponse> ShardRouter::Answer(const TslQuery& query,
                                          const ServeOptions& serve) const {
  const PlanCacheKey key = MakePlanCacheKey(query);
  std::shared_lock<std::shared_mutex> topo(topo_mu_);
  CountIf(options_.server.metrics, "cluster.requests");
  const size_t home = ring_.Route(key.fingerprint);
  size_t target = home;
  bool rerouted = false;
  if (down_[home]) {
    target = ring_.RouteLive(key.fingerprint, down_);
    if (target >= servers_.size()) {
      CountIf(options_.server.metrics, "cluster.no_live_shard");
      return Status::Unavailable("cluster: every shard is partitioned");
    }
    rerouted = true;
    rerouted_.fetch_add(1);
    CountIf(options_.server.metrics, "cluster.rerouted");
  }
  routed_.fetch_add(1);
  {
    // Closed before the shard serves: the shard rebinds the tracer to its
    // per-request virtual clock, and a span still open across that rebind
    // would be stamped on a clock that dies with the request.
    ScopedSpan route_span(serve.tracer, "cluster.route");
    route_span.Annotate("fingerprint", key.fingerprint);
    route_span.Annotate("shard", static_cast<uint64_t>(target));
    if (rerouted) route_span.Annotate("rerouted", "true");
  }
  return servers_[target]->Answer(query, serve);
}

Result<std::future<Result<ServeResponse>>> ShardRouter::Submit(
    TslQuery query, ServeOptions serve) {
  const PlanCacheKey key = MakePlanCacheKey(query);
  std::shared_lock<std::shared_mutex> topo(topo_mu_);
  CountIf(options_.server.metrics, "cluster.requests");
  const size_t home = ring_.Route(key.fingerprint);
  size_t target = home;
  if (down_[home]) {
    target = ring_.RouteLive(key.fingerprint, down_);
    if (target >= servers_.size()) {
      CountIf(options_.server.metrics, "cluster.no_live_shard");
      return Status::Unavailable("cluster: every shard is partitioned");
    }
    rerouted_.fetch_add(1);
    CountIf(options_.server.metrics, "cluster.rerouted");
  }
  routed_.fetch_add(1);
  auto submitted = servers_[target]->Submit(std::move(query), serve);
  if (!submitted.ok() && submitted.status().IsResourceExhausted()) {
    // Overload is not failover: surface the owning shard's own retry-after
    // hint (built from *its* queue) verbatim, tagged with the shard id —
    // re-routing would defeat admission control and dilute the successor's
    // cache with keys it does not own.
    resource_exhausted_.fetch_add(1);
    CountIf(options_.server.metrics, "cluster.resource_exhausted");
    return Status::ResourceExhausted(
        StrCat("shard ", target, ": ", submitted.status().message()));
  }
  return submitted;
}

void ShardRouter::UpdateCatalog(OemDatabase db) {
  std::lock_guard<std::mutex> writer(mutate_mu_);
  template_catalog_.Put(OemDatabase(db));
  std::shared_lock<std::shared_mutex> topo(topo_mu_);
  for (auto& shard : servers_) shard->UpdateCatalog(OemDatabase(db));
  replications_.fetch_add(1);
  CountIf(options_.server.metrics, "cluster.replications");
}

void ShardRouter::ReplaceCatalog(SourceCatalog catalog) {
  std::lock_guard<std::mutex> writer(mutate_mu_);
  template_catalog_ = catalog;
  std::shared_lock<std::shared_mutex> topo(topo_mu_);
  for (auto& shard : servers_) shard->ReplaceCatalog(SourceCatalog(catalog));
  replications_.fetch_add(1);
  CountIf(options_.server.metrics, "cluster.replications");
}

MaintenanceReport ShardRouter::ReplaceMediator(Mediator mediator) {
  std::lock_guard<std::mutex> writer(mutate_mu_);
  // The catalog delta is computed once, against the replication template
  // the retiring shard snapshots were all seeded from, and fanned out to
  // every shard: homogeneous shards see the same delta, so the selective
  // invalidation decision for any cached entry is the same on every shard
  // (the cluster stays byte-identical to a single-shard server).
  const CatalogDelta delta = ComputeCatalogDelta(
      template_mediator_.sources(), template_mediator_.constraints(),
      mediator.sources(), mediator.constraints());
  template_mediator_ = mediator;
  template_index_ = nullptr;
  std::shared_lock<std::shared_mutex> topo(topo_mu_);
  // Each shard runs its own stale-index guard: an index attached to the
  // retiring snapshot is carried over iff it still validates.
  MaintenanceReport report;
  bool first = true;
  for (auto& shard : servers_) {
    MaintenanceReport shard_report =
        shard->ReplaceMediator(Mediator(mediator), delta);
    if (first) {
      report = shard_report;
      first = false;
    } else {
      // Per-entry counts aggregate; the mode and delta are identical on
      // every shard by construction.
      report.entries_examined += shard_report.entries_examined;
      report.entries_invalidated += shard_report.entries_invalidated;
      report.entries_retained += shard_report.entries_retained;
    }
  }
  replications_.fetch_add(1);
  CountIf(options_.server.metrics, "cluster.replications");
  return report;
}

Status ShardRouter::AttachCatalogIndex(
    std::shared_ptr<const ViewSetIndex> index) {
  std::lock_guard<std::mutex> writer(mutate_mu_);
  std::shared_lock<std::shared_mutex> topo(topo_mu_);
  Status status = Status::OK();
  for (auto& shard : servers_) {
    Status attached = shard->AttachCatalogIndex(index);
    if (!attached.ok() && status.ok()) status = attached;
  }
  if (status.ok()) template_index_ = std::move(index);
  replications_.fetch_add(1);
  CountIf(options_.server.metrics, "cluster.replications");
  return status;
}

void ShardRouter::InvalidatePlans() {
  std::lock_guard<std::mutex> writer(mutate_mu_);
  std::shared_lock<std::shared_mutex> topo(topo_mu_);
  for (auto& shard : servers_) shard->InvalidatePlans();
}

double ShardRouter::Resize(size_t new_shards, Tracer* tracer) {
  new_shards = std::max<size_t>(new_shards, 1);
  std::lock_guard<std::mutex> writer(mutate_mu_);
  ScopedSpan rebalance_span(tracer, "cluster.rebalance");

  size_t old_shards = 0;
  {
    std::shared_lock<std::shared_mutex> topo(topo_mu_);
    old_shards = servers_.size();
  }
  HashRing next(new_shards, options_.vnodes_per_shard);
  // Retained fraction over a deterministic fingerprint sample: the share
  // of the key space whose shard did not change, i.e. the warmed keys that
  // will still hit their old plan-cache entries.
  size_t retained_count = 0;
  {
    std::shared_lock<std::shared_mutex> topo(topo_mu_);
    for (size_t i = 0; i < kRebalanceProbes; ++i) {
      const uint64_t probe =
          StableFingerprint(StrCat("rebalance probe ", i));
      if (ring_.Route(probe) == next.Route(probe)) ++retained_count;
    }
  }
  const double retained =
      static_cast<double>(retained_count) / kRebalanceProbes;

  // Build added shards before taking the exclusive lock (mediator copies
  // are the expensive part) so readers stall only for the swap itself.
  std::vector<std::unique_ptr<QueryServer>> added;
  for (size_t i = old_shards; i < new_shards; ++i) {
    added.push_back(MakeShard());
  }
  std::vector<std::unique_ptr<QueryServer>> removed;
  {
    std::unique_lock<std::shared_mutex> topo(topo_mu_);
    ring_ = std::move(next);
    for (auto& shard : added) servers_.push_back(std::move(shard));
    while (servers_.size() > new_shards) {
      removed.push_back(std::move(servers_.back()));
      servers_.pop_back();
    }
    down_.resize(new_shards, false);
  }
  // Drain removed shards outside the topology lock.
  removed.clear();

  rebalances_.fetch_add(1);
  CountIf(options_.server.metrics, "cluster.rebalances");
  if (options_.server.metrics != nullptr) {
    options_.server.metrics->GetGauge("cluster.rebalance_retained_permille")
        ->Set(static_cast<int64_t>(retained * 1000.0));
  }
  rebalance_span.Annotate("from_shards", static_cast<uint64_t>(old_shards));
  rebalance_span.Annotate("to_shards", static_cast<uint64_t>(new_shards));
  rebalance_span.Annotate("retained_permille",
                          static_cast<uint64_t>(retained * 1000.0));
  return retained;
}

void ShardRouter::SetShardDown(size_t shard, bool down) {
  std::unique_lock<std::shared_mutex> topo(topo_mu_);
  if (shard >= down_.size()) return;
  down_[shard] = down;
}

bool ShardRouter::shard_down(size_t shard) const {
  std::shared_lock<std::shared_mutex> topo(topo_mu_);
  return shard < down_.size() && down_[shard];
}

size_t ShardRouter::shards() const {
  std::shared_lock<std::shared_mutex> topo(topo_mu_);
  return servers_.size();
}

size_t ShardRouter::HomeOf(uint64_t fingerprint) const {
  std::shared_lock<std::shared_mutex> topo(topo_mu_);
  return ring_.Route(fingerprint);
}

size_t ShardRouter::RouteOf(uint64_t fingerprint) const {
  std::shared_lock<std::shared_mutex> topo(topo_mu_);
  const size_t home = ring_.Route(fingerprint);
  if (!down_[home]) return home;
  return ring_.RouteLive(fingerprint, down_);
}

QueryServer& ShardRouter::shard(size_t index) {
  std::shared_lock<std::shared_mutex> topo(topo_mu_);
  return *servers_[index];
}

const QueryServer& ShardRouter::shard(size_t index) const {
  std::shared_lock<std::shared_mutex> topo(topo_mu_);
  return *servers_[index];
}

ResilienceRegistry& ShardRouter::resilience(size_t index) {
  std::shared_lock<std::shared_mutex> topo(topo_mu_);
  return servers_[index]->resilience();
}

const ResilienceRegistry& ShardRouter::resilience(size_t index) const {
  std::shared_lock<std::shared_mutex> topo(topo_mu_);
  return servers_[index]->resilience();
}

bool ShardRouter::AllBreakersClosed() const {
  std::shared_lock<std::shared_mutex> topo(topo_mu_);
  for (const auto& shard : servers_) {
    if (!shard->resilience().AllClosed()) return false;
  }
  return true;
}

ClusterStats ShardRouter::stats() const {
  std::shared_lock<std::shared_mutex> topo(topo_mu_);
  ClusterStats stats;
  stats.shards = servers_.size();
  stats.routed = routed_.load();
  stats.rerouted = rerouted_.load();
  stats.resource_exhausted = resource_exhausted_.load();
  stats.replications = replications_.load();
  stats.rebalances = rebalances_.load();
  stats.shard.reserve(servers_.size());
  for (const auto& shard : servers_) stats.shard.push_back(shard->stats());
  return stats;
}

std::string ShardRouter::Statsz() const {
  std::string out = stats().ToString();
  if (options_.server.metrics != nullptr) {
    out += "metrics:\n";
    out += options_.server.metrics->ToText();
  }
  return out;
}

void ShardRouter::Shutdown() {
  std::shared_lock<std::shared_mutex> topo(topo_mu_);
  for (auto& shard : servers_) shard->Shutdown();
}

}  // namespace tslrw
