#ifndef TSLRW_CLUSTER_CLUSTER_H_
#define TSLRW_CLUSTER_CLUSTER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "cluster/ring.h"
#include "common/result.h"
#include "mediator/mediator.h"
#include "oem/database.h"
#include "service/server.h"
#include "service/stats.h"
#include "tsl/ast.h"

namespace tslrw {

/// \brief Cluster-wide knobs. `server` configures every shard identically
/// (threads, queue, plan cache, resilience, metrics) — homogeneous shards
/// are what makes the byte-exactness argument below go through.
struct ClusterOptions {
  /// Number of QueryServer shards behind the router.
  size_t shards = 1;
  /// Virtual nodes per shard on the consistent-hash ring.
  size_t vnodes_per_shard = HashRing::kDefaultVnodesPerShard;
  /// Per-shard server configuration. `server.metrics` (when set) is shared
  /// by the router and every shard, so serve.* counters aggregate across
  /// the cluster and cluster.* counters land beside them.
  ServerOptions server;
};

/// \brief A point-in-time snapshot of the whole cluster: router counters
/// plus every shard's ServerStats (index = shard id).
struct ClusterStats {
  size_t shards = 0;
  /// Requests routed (Answer + Submit), and how many of those were
  /// re-routed to a ring successor because their home shard was down.
  uint64_t routed = 0;
  uint64_t rerouted = 0;
  /// Admission rejections surfaced from shard pools (the shard's
  /// retry-after hint is propagated verbatim — see ShardRouter::Submit).
  uint64_t resource_exhausted = 0;
  /// Catalog/mediator/index fan-outs replicated to every shard.
  uint64_t replications = 0;
  /// Ring-topology changes (Resize calls).
  uint64_t rebalances = 0;
  std::vector<ServerStats> shard;

  /// Sums the per-shard plan-cache counters (cluster-wide hit rate).
  PlanCacheStats TotalPlanCache() const;
  std::string ToString() const;
};

/// \brief The sharded cluster front-end: routes each request by consistent
/// hashing over its canonical-query StableFingerprint to one of N
/// QueryServer shards, each with its own thread pool, sharded single-flight
/// plan cache, and ResilienceRegistry.
///
/// Byte-exactness: routing only chooses *which shard's cache and pool*
/// serve a request. Every shard holds an identical immutable snapshot
/// (replication fans each mutation out to all shards), and a QueryServer
/// answer is a pure function of (query, seed, snapshot) — so the cluster's
/// answers are byte-identical to a single-shard server for every seed, at
/// every shard count, including across failover re-routes (the successor
/// shard holds the same snapshot). docs/SERVING.md spells the argument out.
///
/// Failover: SetShardDown marks a shard partitioned; its keys re-route
/// deterministically to the ring successor until it rejoins. Overload is
/// *not* failover — a shard pool's kResourceExhausted is surfaced to the
/// client with that shard's retry-after hint, never silently re-routed
/// (re-routing overload would defeat admission control and dilute the
/// successor's cache).
///
/// Rebalance: Resize builds a new ring and grows/shrinks the shard set;
/// surviving shards keep their plan caches, so only remapped fingerprints
/// start cold. The retained-key fraction is measured and returned.
class ShardRouter {
 public:
  ShardRouter(Mediator mediator, SourceCatalog catalog,
              ClusterOptions options = {},
              WrapperFactory wrapper_factory = nullptr);
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Routes and serves synchronously on the calling thread. Opens a
  /// `cluster.route` span (closed before the shard serves, so the shard's
  /// own request span nests cleanly after it) annotated with the
  /// fingerprint, the chosen shard, and whether failover re-routed it.
  Result<ServeResponse> Answer(const TslQuery& query,
                               const ServeOptions& serve = {}) const;

  /// Routes and submits to the owning shard's pool. A full shard queue
  /// rejects with kResourceExhausted; the shard's own retry-after hint is
  /// propagated verbatim (tagged with the shard id) and counted in
  /// `cluster.resource_exhausted`.
  Result<std::future<Result<ServeResponse>>> Submit(TslQuery query,
                                                    ServeOptions serve = {});

  /// Replication: each mutation fans out to every shard, which performs
  /// its own immutable snapshot swap (QueryServer semantics, including the
  /// per-shard stale-index guard in ReplaceMediator).
  void UpdateCatalog(OemDatabase db);
  void ReplaceCatalog(SourceCatalog catalog);
  /// The catalog delta is computed once against the replication template
  /// and applied identically on every shard (selective invalidation or a
  /// full flush, per ServerOptions::maintenance); the returned report
  /// aggregates per-entry counts across shards.
  MaintenanceReport ReplaceMediator(Mediator mediator);
  Status AttachCatalogIndex(std::shared_ptr<const ViewSetIndex> index);
  void InvalidatePlans();

  /// Changes the ring to \p new_shards shards (a `cluster.rebalance` span
  /// on \p tracer when given). Surviving shards keep their plan caches;
  /// new shards start from the latest replicated snapshot, cold. Returns
  /// the fraction of a deterministic fingerprint sample whose shard did
  /// not change — the retained-hit bound for warmed keys.
  double Resize(size_t new_shards, Tracer* tracer = nullptr);

  /// Marks a shard partitioned (down = true) or rejoined. Down shards
  /// receive no traffic; their keys re-route to the ring successor. The
  /// shard itself — snapshot, plan cache, breakers — is left intact, so a
  /// rejoin restores its warmed state byte-for-byte.
  void SetShardDown(size_t shard, bool down);
  bool shard_down(size_t shard) const;

  size_t shards() const;
  /// The ring owner of \p fingerprint, ignoring down flags.
  size_t HomeOf(uint64_t fingerprint) const;
  /// The live route of \p fingerprint (owner, or its successor when down).
  size_t RouteOf(uint64_t fingerprint) const;

  QueryServer& shard(size_t index);
  const QueryServer& shard(size_t index) const;
  ResilienceRegistry& resilience(size_t index);
  const ResilienceRegistry& resilience(size_t index) const;
  bool AllBreakersClosed() const;

  ClusterStats stats() const;
  /// Cluster `/statsz`: router counters, every shard's stats (with the
  /// per-cache-shard lines), then every metric in the shared registry.
  std::string Statsz() const;

  /// Stops every shard (drain + join). Idempotent.
  void Shutdown();

 private:
  std::unique_ptr<QueryServer> MakeShard() const;

  ClusterOptions options_;
  WrapperFactory wrapper_factory_;

  /// Guards ring_/servers_/down_ as one topology: requests hold it shared
  /// for their whole serve (a shard must not be destroyed under a request),
  /// Resize/SetShardDown take it exclusive.
  mutable std::shared_mutex topo_mu_;
  HashRing ring_;
  std::vector<std::unique_ptr<QueryServer>> servers_;
  std::vector<bool> down_;

  /// Serializes replication and resize; also guards the replication
  /// templates below, from which new shards are seeded.
  mutable std::mutex mutate_mu_;
  Mediator template_mediator_;
  SourceCatalog template_catalog_;
  std::shared_ptr<const ViewSetIndex> template_index_;

  mutable std::atomic<uint64_t> routed_{0};
  mutable std::atomic<uint64_t> rerouted_{0};
  std::atomic<uint64_t> resource_exhausted_{0};
  std::atomic<uint64_t> replications_{0};
  std::atomic<uint64_t> rebalances_{0};
};

}  // namespace tslrw

#endif  // TSLRW_CLUSTER_CLUSTER_H_
