#include "cluster/ring.h"

#include <algorithm>

#include "common/string_util.h"
#include "tsl/canonical.h"

namespace tslrw {

HashRing::HashRing(size_t shards, size_t vnodes_per_shard)
    : shards_(std::max<size_t>(shards, 1)),
      vnodes_(std::max<size_t>(vnodes_per_shard, 1)) {
  points_.reserve(shards_ * vnodes_);
  for (size_t shard = 0; shard < shards_; ++shard) {
    for (size_t vnode = 0; vnode < vnodes_; ++vnode) {
      const uint64_t hash =
          Mix64(StableFingerprint(StrCat("shard ", shard, " vnode ", vnode)));
      points_.push_back({hash, static_cast<uint32_t>(shard)});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
            });
}

size_t HashRing::Route(uint64_t fingerprint) const {
  const uint64_t mixed = Mix64(fingerprint);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), mixed,
      [](const Point& p, uint64_t value) { return p.hash < value; });
  if (it == points_.end()) it = points_.begin();
  return it->shard;
}

size_t HashRing::RouteLive(uint64_t fingerprint,
                           const std::vector<bool>& down) const {
  const uint64_t mixed = Mix64(fingerprint);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), mixed,
      [](const Point& p, uint64_t value) { return p.hash < value; });
  if (it == points_.end()) it = points_.begin();
  const size_t start = static_cast<size_t>(it - points_.begin());
  for (size_t step = 0; step < points_.size(); ++step) {
    const Point& point = points_[(start + step) % points_.size()];
    if (point.shard >= down.size() || !down[point.shard]) return point.shard;
  }
  return shards_;
}

}  // namespace tslrw
