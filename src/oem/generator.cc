#include "oem/generator.h"

#include <cassert>

#include "common/string_util.h"

namespace tslrw {

namespace {

class Generator {
 public:
  Generator(const std::string& name, const GeneratorOptions& options)
      : options_(options), rng_(options.seed), db_(name) {}

  OemDatabase Build() {
    for (int r = 0; r < options_.num_roots; ++r) {
      std::string label = options_.root_label.empty()
                              ? RandomLabel()
                              : options_.root_label;
      Oid root = NewOid();
      Status st = db_.PutSet(root, label);
      assert(st.ok());
      (void)st;
      st = db_.AddRoot(root);
      assert(st.ok());
      Populate(root, options_.max_depth);
    }
    assert(db_.Validate().ok());
    return std::move(db_);
  }

 private:
  void Populate(const Oid& parent, int depth) {
    int fanout = std::uniform_int_distribution<int>(
        1, std::max(1, options_.max_fanout))(rng_);
    for (int i = 0; i < fanout; ++i) {
      if (!set_oids_.empty() && Chance(options_.share_probability)) {
        const Oid& reused =
            set_oids_[std::uniform_int_distribution<size_t>(
                0, set_oids_.size() - 1)(rng_)];
        Status st = db_.AddEdge(parent, reused);
        assert(st.ok());
        (void)st;
        continue;
      }
      Oid child = NewOid();
      bool atomic = depth <= 1 || Chance(options_.atomic_probability);
      Status st;
      if (atomic) {
        st = db_.PutAtomic(child, RandomLabel(), RandomValue());
      } else {
        st = db_.PutSet(child, RandomLabel());
      }
      assert(st.ok());
      (void)st;
      st = db_.AddEdge(parent, child);
      assert(st.ok());
      if (!atomic) {
        set_oids_.push_back(child);
        Populate(child, depth - 1);
      }
    }
  }

  bool Chance(double p) {
    return std::uniform_real_distribution<double>(0.0, 1.0)(rng_) < p;
  }
  std::string RandomLabel() {
    return StrCat("l", std::uniform_int_distribution<int>(
                           0, options_.num_labels - 1)(rng_));
  }
  std::string RandomValue() {
    return StrCat("v", std::uniform_int_distribution<int>(
                           0, options_.num_values - 1)(rng_));
  }
  Oid NewOid() { return Term::MakeAtom(StrCat("o", next_oid_++)); }

  const GeneratorOptions& options_;
  std::mt19937_64 rng_;
  OemDatabase db_;
  std::vector<Oid> set_oids_;
  int next_oid_ = 0;
};

void MustOk(const Status& st) {
  assert(st.ok());
  (void)st;
}

}  // namespace

OemDatabase GenerateOemDatabase(const std::string& name,
                                const GeneratorOptions& options) {
  return Generator(name, options).Build();
}

OemDatabase MakeFig3Database(const std::string& name) {
  OemDatabase db(name);
  auto atom = [](const char* s) { return Term::MakeAtom(s); };
  // Publication 1: "Views" by A. Gupta (Fig. 3, left object).
  MustOk(db.PutSet(atom("pub1"), "publication"));
  MustOk(db.AddRoot(atom("pub1")));
  MustOk(db.PutAtomic(atom("t1"), "title", "Views"));
  MustOk(db.PutAtomic(atom("a1"), "author", "A. Gupta"));
  MustOk(db.AddEdge(atom("pub1"), atom("t1")));
  MustOk(db.AddEdge(atom("pub1"), atom("a1")));
  // Publication 2: "Constraint..." at SIGMOD 1993 (Fig. 3, right object).
  MustOk(db.PutSet(atom("pub2"), "publication"));
  MustOk(db.AddRoot(atom("pub2")));
  MustOk(db.PutAtomic(atom("t2"), "title", "Constraint Maintenance"));
  MustOk(db.PutAtomic(atom("a2"), "author", "A. Gupta"));
  MustOk(db.PutAtomic(atom("v2"), "venue", "SIGMOD"));
  MustOk(db.PutAtomic(atom("y2"), "year", "1993"));
  MustOk(db.AddEdge(atom("pub2"), atom("t2")));
  MustOk(db.AddEdge(atom("pub2"), atom("a2")));
  MustOk(db.AddEdge(atom("pub2"), atom("v2")));
  MustOk(db.AddEdge(atom("pub2"), atom("y2")));
  return db;
}

}  // namespace tslrw
