#include "oem/edge_labeled.h"

#include "common/string_util.h"

namespace tslrw {

Status EdgeLabeledDatabase::AddNode(const Oid& oid) {
  if (!oid.IsGround()) {
    return Status::InvalidArgument(
        StrCat("node oid must be ground: ", oid.ToString()));
  }
  auto [it, inserted] = nodes_.try_emplace(oid);
  if (!inserted && it->second.atomic_value.has_value()) {
    return Status::InvalidArgument(
        StrCat("node ", oid.ToString(), " already declared atomic"));
  }
  return Status::OK();
}

Status EdgeLabeledDatabase::AddAtomicNode(const Oid& oid, std::string value) {
  if (!oid.IsGround()) {
    return Status::InvalidArgument(
        StrCat("node oid must be ground: ", oid.ToString()));
  }
  auto [it, inserted] = nodes_.try_emplace(oid);
  if (!inserted) {
    if (it->second.atomic_value != value || !it->second.out.empty()) {
      return Status::InvalidArgument(
          StrCat("node ", oid.ToString(), " already declared differently"));
    }
    return Status::OK();
  }
  it->second.atomic_value = std::move(value);
  return Status::OK();
}

Status EdgeLabeledDatabase::AddEdge(const Oid& from, std::string label,
                                    const Oid& to) {
  auto it = nodes_.find(from);
  if (it == nodes_.end()) {
    return Status::NotFound(StrCat("no node ", from.ToString()));
  }
  if (it->second.atomic_value.has_value()) {
    return Status::InvalidArgument(
        StrCat("atomic node ", from.ToString(), " cannot have edges"));
  }
  it->second.out.emplace(std::move(label), to);
  return Status::OK();
}

Status EdgeLabeledDatabase::AddRoot(const Oid& oid) {
  if (nodes_.count(oid) == 0) {
    return Status::NotFound(StrCat("no node ", oid.ToString()));
  }
  roots_.insert(oid);
  return Status::OK();
}

const EdgeLabeledDatabase::Node* EdgeLabeledDatabase::Find(
    const Oid& oid) const {
  auto it = nodes_.find(oid);
  return it == nodes_.end() ? nullptr : &it->second;
}

Result<OemDatabase> EncodeEdgeLabeled(const EdgeLabeledDatabase& input) {
  OemDatabase out(input.name());
  for (const auto& [oid, node] : input.nodes()) {
    if (node.atomic_value.has_value()) {
      TSLRW_RETURN_NOT_OK(out.PutAtomic(oid, "node", *node.atomic_value));
    } else {
      TSLRW_RETURN_NOT_OK(out.PutSet(oid, "node"));
    }
  }
  for (const auto& [oid, node] : input.nodes()) {
    for (const auto& [label, target] : node.out) {
      if (input.Find(target) == nullptr) {
        return Status::NotFound(
            StrCat("edge from ", oid.ToString(), " references missing node ",
                   target.ToString()));
      }
      Oid edge_oid =
          Term::MakeFunc("edge", {oid, Term::MakeAtom(label), target});
      TSLRW_RETURN_NOT_OK(out.PutSet(edge_oid, label, {target}));
      TSLRW_RETURN_NOT_OK(out.AddEdge(oid, edge_oid));
    }
  }
  for (const Oid& root : input.roots()) {
    TSLRW_RETURN_NOT_OK(out.AddRoot(root));
  }
  TSLRW_RETURN_NOT_OK(out.Validate());
  return out;
}

Result<EdgeLabeledDatabase> DecodeEdgeLabeled(const OemDatabase& encoded) {
  EdgeLabeledDatabase out(encoded.name());
  // First pass: nodes.
  for (const auto& [oid, obj] : encoded.objects()) {
    if (obj.label != "node") continue;
    if (obj.is_atomic()) {
      TSLRW_RETURN_NOT_OK(out.AddAtomicNode(oid, obj.value.atom()));
    } else {
      TSLRW_RETURN_NOT_OK(out.AddNode(oid));
    }
  }
  // Second pass: edge objects.
  for (const auto& [oid, obj] : encoded.objects()) {
    if (obj.label == "node") continue;
    if (!oid.is_func() || oid.functor() != "edge" || oid.args().size() != 3 ||
        obj.is_atomic() || obj.value.children().size() != 1) {
      return Status::InvalidArgument(
          StrCat("object ", oid.ToString(),
                 " is not in the image of EncodeEdgeLabeled"));
    }
    const Oid& from = oid.args()[0];
    const Oid& to = *obj.value.children().begin();
    TSLRW_RETURN_NOT_OK(out.AddEdge(from, obj.label, to));
  }
  for (const Oid& root : encoded.roots()) {
    TSLRW_RETURN_NOT_OK(out.AddRoot(root));
  }
  return out;
}

}  // namespace tslrw
