#ifndef TSLRW_OEM_EDGE_LABELED_H_
#define TSLRW_OEM_EDGE_LABELED_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "oem/database.h"

namespace tslrw {

/// \brief The "popular variant of the original OEM data model" of \S6
/// ("OEM variants and rewriting"): labels annotate the *edges* rather than
/// the nodes, as in later OEM/Lore papers. Nodes carry only an optional
/// atomic value; structure lives in labeled edges.
class EdgeLabeledDatabase {
 public:
  EdgeLabeledDatabase() = default;
  explicit EdgeLabeledDatabase(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Declares a complex (set) node.
  Status AddNode(const Oid& oid);
  /// Declares an atomic node with the given value.
  Status AddAtomicNode(const Oid& oid, std::string value);
  /// Adds the labeled edge `from --label--> to`.
  Status AddEdge(const Oid& from, std::string label, const Oid& to);
  Status AddRoot(const Oid& oid);

  struct Node {
    std::optional<std::string> atomic_value;
    /// Outgoing labeled edges (a node may be reached under many labels).
    std::multimap<std::string, Oid> out;
  };

  const Node* Find(const Oid& oid) const;
  const std::set<Oid>& roots() const { return roots_; }
  const std::map<Oid, Node>& nodes() const { return nodes_; }

 private:
  std::string name_;
  std::map<Oid, Node> nodes_;
  std::set<Oid> roots_;
};

/// \brief Encodes an edge-labeled database into the node-labeled OEM this
/// library's query machinery operates on, so "the techniques and
/// algorithms described in this paper apply with little change" (\S6).
///
/// Encoding: every node keeps its oid with the uniform label `node` (atomic
/// nodes keep their value); every edge `u --l--> v` becomes an
/// intermediate set object `edge(u,l,v)` labeled `l` whose single child is
/// v. A TSL path `u.l.v` over the original graph becomes
/// `<U node {<E l {<V node ...>}>}>` over the encoding. The only implicit
/// functional dependency the encoding adds beyond oid -> value is carried
/// by the synthetic edge objects, matching the \S6 observation that the
/// edge-labeled variant's oid key constrains the value only.
Result<OemDatabase> EncodeEdgeLabeled(const EdgeLabeledDatabase& input);

/// \brief Inverse of EncodeEdgeLabeled (for databases in the image of the
/// encoding: `node`-labeled objects with `edge(...)`-oid children).
Result<EdgeLabeledDatabase> DecodeEdgeLabeled(const OemDatabase& encoded);

}  // namespace tslrw

#endif  // TSLRW_OEM_EDGE_LABELED_H_
