#ifndef TSLRW_OEM_PARSER_H_
#define TSLRW_OEM_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "oem/database.h"
#include "oem/term.h"

namespace tslrw {

/// \brief Parses the textual OEM data format produced by
/// OemDatabase::ToString:
///
/// ```
/// database db {
///   <p1 person {
///     <n1 name { <l1 last "stanford"> }>
///     <ph1 phone "555-1234">
///     @p2              % reference to an object defined elsewhere
///   }>
/// }
/// ```
///
/// Top-level objects become roots. Object ids are ground terms (atoms or
/// function terms such as `f(p1)`); atomic values are quoted strings or bare
/// identifiers/numbers. `%` comments run to end of line.
Result<OemDatabase> ParseOemDatabase(std::string_view text);

/// \brief Parses a single ground term, e.g. `p1` or `f(p1,g(x))`.
Result<Term> ParseGroundTerm(std::string_view text);

}  // namespace tslrw

#endif  // TSLRW_OEM_PARSER_H_
