#ifndef TSLRW_OEM_ISOMORPHISM_H_
#define TSLRW_OEM_ISOMORPHISM_H_

#include <map>
#include <optional>

#include "oem/database.h"

namespace tslrw {

/// \brief Equivalence of OEM databases *up to object-id renaming* (\S3:
/// "It is possible to define OEM database equivalence up to object id
/// renaming"; \S6 "Isomorphism"): a bijection between the reachable oids of
/// the two databases that maps roots to roots and preserves labels, atomic
/// values, and the child relation exactly.
///
/// This sits strictly between the \S3 identity (`OemDatabase::Equals`,
/// which also fixes the oids) and bisimulation
/// (`StructurallyEquivalent`, which identifies duplicated/unfolded
/// structure): isomorphic databases are always bisimilar, but a 1-cycle and
/// a 2-cycle, or a shared child versus two equal copies, are bisimilar
/// without being isomorphic.
///
/// Returns the witnessing bijection (oid of \p d1 -> oid of \p d2) or
/// nullopt. Backtracking over label/degree-signature classes; graph
/// isomorphism is not polynomial in general, so intended for test-sized
/// databases (every legal answer comparison in this library).
std::optional<std::map<Oid, Oid>> FindOidRenaming(const OemDatabase& d1,
                                                  const OemDatabase& d2);

/// \brief Convenience wrapper: whether such a bijection exists.
bool EquivalentUpToOidRenaming(const OemDatabase& d1, const OemDatabase& d2);

}  // namespace tslrw

#endif  // TSLRW_OEM_ISOMORPHISM_H_
