#include "oem/isomorphism.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/string_util.h"

namespace tslrw {

namespace {

/// A cheap invariant per object: label, atomicity/value, fan-out, fan-in,
/// and rootness. Candidates must share signatures, which prunes the
/// backtracking sharply on labeled data.
struct Signature {
  std::string label;
  bool atomic;
  std::string value;
  size_t out_degree;
  size_t in_degree;
  bool is_root;

  friend bool operator<(const Signature& a, const Signature& b) {
    return std::tie(a.label, a.atomic, a.value, a.out_degree, a.in_degree,
                    a.is_root) < std::tie(b.label, b.atomic, b.value,
                                          b.out_degree, b.in_degree,
                                          b.is_root);
  }
  friend bool operator==(const Signature& a, const Signature& b) {
    return !(a < b) && !(b < a);
  }
};

struct Graph {
  std::vector<Oid> oids;                 // index -> oid
  std::map<Oid, size_t> index;           // oid -> index
  std::vector<Signature> signatures;
  std::vector<std::vector<size_t>> children;  // sorted index lists? no: sets
  std::vector<bool> root;
};

Graph BuildGraph(const OemDatabase& db) {
  Graph g;
  for (const Oid& oid : db.ReachableOids()) {
    g.index[oid] = g.oids.size();
    g.oids.push_back(oid);
  }
  size_t n = g.oids.size();
  g.signatures.resize(n);
  g.children.resize(n);
  g.root.resize(n, false);
  std::vector<size_t> in_degree(n, 0);
  for (size_t i = 0; i < n; ++i) {
    const OemObject* obj = db.Find(g.oids[i]);
    Signature& sig = g.signatures[i];
    sig.label = obj->label;
    sig.atomic = obj->is_atomic();
    sig.value = obj->is_atomic() ? obj->value.atom() : "";
    if (!obj->is_atomic()) {
      for (const Oid& c : obj->value.children()) {
        auto it = g.index.find(c);
        if (it == g.index.end()) continue;  // unreachable child: ignored
        g.children[i].push_back(it->second);
        ++in_degree[it->second];
      }
      std::sort(g.children[i].begin(), g.children[i].end());
    }
    sig.out_degree = g.children[i].size();
  }
  for (const Oid& r : db.roots()) {
    auto it = g.index.find(r);
    if (it != g.index.end()) g.root[it->second] = true;
  }
  for (size_t i = 0; i < n; ++i) {
    g.signatures[i].in_degree = in_degree[i];
    g.signatures[i].is_root = g.root[i];
  }
  return g;
}

/// Backtracking matcher: assigns d1 nodes (in a signature-rarity order) to
/// unused d2 nodes with equal signatures, checking child-edge consistency
/// against already-assigned neighbors in both directions.
class Matcher {
 public:
  Matcher(const Graph& a, const Graph& b) : a_(a), b_(b) {}

  bool Run(std::vector<size_t>* mapping) {
    size_t n = a_.oids.size();
    assignment_.assign(n, kUnassigned);
    used_.assign(n, false);
    // Rarest signatures first keeps the branching factor low.
    order_.resize(n);
    for (size_t i = 0; i < n; ++i) order_[i] = i;
    std::map<Signature, int> freq;
    for (const Signature& s : a_.signatures) ++freq[s];
    std::stable_sort(order_.begin(), order_.end(),
                     [&](size_t x, size_t y) {
                       return freq[a_.signatures[x]] < freq[a_.signatures[y]];
                     });
    if (!Extend(0)) return false;
    *mapping = assignment_;
    return true;
  }

 private:
  static constexpr size_t kUnassigned = static_cast<size_t>(-1);

  bool Extend(size_t step) {
    if (step == order_.size()) return true;
    size_t u = order_[step];
    for (size_t v = 0; v < b_.oids.size(); ++v) {
      if (used_[v]) continue;
      if (!(a_.signatures[u] == b_.signatures[v])) continue;
      if (!Consistent(u, v)) continue;
      assignment_[u] = v;
      used_[v] = true;
      if (Extend(step + 1)) return true;
      assignment_[u] = kUnassigned;
      used_[v] = false;
    }
    return false;
  }

  /// Edges between u and already-assigned nodes must be mirrored by v.
  bool Consistent(size_t u, size_t v) const {
    for (size_t uc : a_.children[u]) {
      if (assignment_[uc] == kUnassigned) continue;
      if (!std::binary_search(b_.children[v].begin(), b_.children[v].end(),
                              assignment_[uc])) {
        return false;
      }
    }
    for (size_t w = 0; w < a_.oids.size(); ++w) {
      if (assignment_[w] == kUnassigned) continue;
      bool a_edge = std::binary_search(a_.children[w].begin(),
                                       a_.children[w].end(), u);
      bool b_edge = std::binary_search(b_.children[assignment_[w]].begin(),
                                       b_.children[assignment_[w]].end(), v);
      if (a_edge != b_edge) return false;
    }
    return true;
  }

  const Graph& a_;
  const Graph& b_;
  std::vector<size_t> assignment_;
  std::vector<bool> used_;
  std::vector<size_t> order_;
};

}  // namespace

std::optional<std::map<Oid, Oid>> FindOidRenaming(const OemDatabase& d1,
                                                  const OemDatabase& d2) {
  Graph a = BuildGraph(d1);
  Graph b = BuildGraph(d2);
  if (a.oids.size() != b.oids.size()) return std::nullopt;
  // Signature multisets must agree.
  std::vector<Signature> sa = a.signatures, sb = b.signatures;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  if (!(sa == sb)) return std::nullopt;

  Matcher matcher(a, b);
  std::vector<size_t> mapping;
  if (!matcher.Run(&mapping)) return std::nullopt;
  std::map<Oid, Oid> renaming;
  for (size_t i = 0; i < a.oids.size(); ++i) {
    renaming.emplace(a.oids[i], b.oids[mapping[i]]);
  }
  return renaming;
}

bool EquivalentUpToOidRenaming(const OemDatabase& d1, const OemDatabase& d2) {
  return FindOidRenaming(d1, d2).has_value();
}

}  // namespace tslrw
