#ifndef TSLRW_OEM_TERM_H_
#define TSLRW_OEM_TERM_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace tslrw {

/// \brief Syntactic category of a Term.
enum class TermKind {
  /// Atomic datum: a label, an atomic value, or an atomic object id
  /// (e.g. `person`, `"SIGMOD"`, `1993`, `p1`).
  kAtom,
  /// A variable. Object-id variables (V_O) and label/value variables (V_C)
  /// form disjoint sets (\S2 of the paper).
  kVariable,
  /// An uninterpreted function term f(t1, ..., tn) from the Herbrand
  /// universe; TSL heads use these as Skolem object ids (e.g. `f(P)`).
  kFunction,
};

/// \brief The two disjoint variable sorts of TSL (\S2): V_O holds object-id
/// variables, V_C holds label and value variables.
enum class VarKind : uint8_t {
  kObjectId,
  kLabelValue,
};

/// \brief An immutable first-order term over the Herbrand universe of \S2:
/// atoms, sorted variables, and uninterpreted function terms.
///
/// Terms are value types backed by a shared immutable representation, so
/// copying is O(1) and structural equality / hashing are cached. The whole
/// rewriting stack (mappings, chase, composition, equivalence) manipulates
/// Terms purely functionally.
class Term {
 public:
  /// Constructs the atom `name`. Atoms compare by spelling.
  static Term MakeAtom(std::string name);
  /// Constructs a variable with the given sort.
  static Term MakeVar(std::string name, VarKind kind);
  /// Constructs the function term `symbol(args...)`.
  static Term MakeFunc(std::string symbol, std::vector<Term> args);

  /// Default-constructed Term is the atom "" (useful only as a placeholder).
  Term();

  TermKind kind() const;
  bool is_atom() const { return kind() == TermKind::kAtom; }
  bool is_var() const { return kind() == TermKind::kVariable; }
  bool is_func() const { return kind() == TermKind::kFunction; }

  /// Atom spelling; requires is_atom().
  const std::string& atom_name() const;
  /// Variable name; requires is_var().
  const std::string& var_name() const;
  /// Variable sort; requires is_var().
  VarKind var_kind() const;
  /// Function symbol; requires is_func().
  const std::string& functor() const;
  /// Function arguments; requires is_func().
  const std::vector<Term>& args() const;

  /// True iff the term contains no variables.
  bool IsGround() const;

  /// Inserts every variable occurring in the term into \p out.
  void CollectVariables(std::set<Term>* out) const;

  /// Structural hash (cached at construction).
  size_t Hash() const;

  /// Concrete syntax: atoms verbatim, variables verbatim, `f(a,B)`.
  std::string ToString() const;

  friend bool operator==(const Term& a, const Term& b);
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }
  /// Total order (kind, then spelling, then arguments); used for canonical
  /// printing and deterministic iteration.
  friend bool operator<(const Term& a, const Term& b);

 private:
  struct Rep;
  explicit Term(std::shared_ptr<const Rep> rep) : rep_(std::move(rep)) {}
  std::shared_ptr<const Rep> rep_;
};

/// Hash functor for unordered containers keyed by Term.
struct TermHash {
  size_t operator()(const Term& t) const { return t.Hash(); }
};

/// \brief A finite mapping from variables to terms, applied simultaneously.
///
/// Bindings are keyed by variable (name + sort). Composition and
/// idempotent application are provided; the rewrite layer extends this with
/// set-pattern bindings (\S3.1 "Set Mappings").
class TermSubstitution {
 public:
  TermSubstitution() = default;

  /// Binds \p var (must be a variable) to \p value. Returns false and leaves
  /// the substitution unchanged if \p var is already bound to a different
  /// term.
  bool Bind(const Term& var, const Term& value);

  /// Looks up the binding for \p var; returns nullptr if unbound.
  const Term* Lookup(const Term& var) const;

  /// Removes the binding for \p var (no-op if unbound). Supports the
  /// bind-trail undo used by backtracking matchers: record each variable
  /// freshly bound, and on failure unbind exactly those instead of copying
  /// the whole substitution up front.
  void Unbind(const Term& var);

  bool empty() const { return bindings_.empty(); }
  size_t size() const { return bindings_.size(); }

  /// Applies the substitution to \p t (simultaneous, non-recursive on
  /// introduced variables).
  Term Apply(const Term& t) const;

  /// Applies the substitution to every binding's right-hand side; used to
  /// keep most-general unifiers in triangular-solved form.
  void ApplyToRange(const TermSubstitution& other);

  const std::map<Term, Term>& bindings() const { return bindings_; }

  std::string ToString() const;

 private:
  std::map<Term, Term> bindings_;
};

/// \brief Syntactic unification of two terms.
///
/// Atoms unify with equal atoms; variables unify with any term of a
/// compatible sort (object-id variables never unify with label/value
/// variables or with terms bound to them); function terms unify
/// componentwise. Implements the occurs check. On success, extends \p subst
/// (both input terms are first instantiated by it) to a most general
/// unifier; on failure, \p subst is left unchanged.
///
/// Used by query-view composition (\S3.1 Step 2A) and the labeled-FD chase
/// (\S3.3).
bool Unify(const Term& a, const Term& b, TermSubstitution* subst);

/// \brief Whether binding \p var to \p value respects the variable sorts:
/// label/value variables never bind to function terms (those are object
/// ids); object-id variables bind to atoms or function terms. Variables of
/// either sort may alias each other — V_O / V_C disjointness concerns
/// variable *names* within one rule (checked positionally at parse time),
/// not bindings created by unification.
bool SortsCompatible(const Term& var, const Term& value);

}  // namespace tslrw

#endif  // TSLRW_OEM_TERM_H_
