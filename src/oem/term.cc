#include "oem/term.h"

#include <cassert>
#include <cctype>
#include <functional>

#include "common/string_util.h"

namespace tslrw {

struct Term::Rep {
  TermKind kind;
  VarKind var_kind = VarKind::kObjectId;  // meaningful only for variables
  std::string name;                       // atom spelling / var name / functor
  std::vector<Term> args;                 // function arguments
  size_t hash = 0;
  bool ground = true;
};

namespace {

size_t HashCombine(size_t seed, size_t v) {
  // boost::hash_combine recipe.
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

Term Term::MakeAtom(std::string name) {
  auto rep = std::make_shared<Rep>();
  rep->kind = TermKind::kAtom;
  rep->name = std::move(name);
  rep->hash = HashCombine(0x01, std::hash<std::string>()(rep->name));
  rep->ground = true;
  return Term(std::move(rep));
}

Term Term::MakeVar(std::string name, VarKind kind) {
  auto rep = std::make_shared<Rep>();
  rep->kind = TermKind::kVariable;
  rep->var_kind = kind;
  rep->name = std::move(name);
  rep->hash = HashCombine(kind == VarKind::kObjectId ? 0x02 : 0x03,
                          std::hash<std::string>()(rep->name));
  rep->ground = false;
  return Term(std::move(rep));
}

Term Term::MakeFunc(std::string symbol, std::vector<Term> args) {
  auto rep = std::make_shared<Rep>();
  rep->kind = TermKind::kFunction;
  rep->name = std::move(symbol);
  rep->args = std::move(args);
  size_t h = HashCombine(0x04, std::hash<std::string>()(rep->name));
  bool ground = true;
  for (const Term& a : rep->args) {
    h = HashCombine(h, a.Hash());
    ground = ground && a.IsGround();
  }
  rep->hash = h;
  rep->ground = ground;
  return Term(std::move(rep));
}

Term::Term() : Term(MakeAtom("")) {}

TermKind Term::kind() const { return rep_->kind; }

const std::string& Term::atom_name() const {
  assert(is_atom());
  return rep_->name;
}

const std::string& Term::var_name() const {
  assert(is_var());
  return rep_->name;
}

VarKind Term::var_kind() const {
  assert(is_var());
  return rep_->var_kind;
}

const std::string& Term::functor() const {
  assert(is_func());
  return rep_->name;
}

const std::vector<Term>& Term::args() const {
  assert(is_func());
  return rep_->args;
}

bool Term::IsGround() const { return rep_->ground; }

void Term::CollectVariables(std::set<Term>* out) const {
  switch (kind()) {
    case TermKind::kAtom:
      return;
    case TermKind::kVariable:
      out->insert(*this);
      return;
    case TermKind::kFunction:
      for (const Term& a : args()) a.CollectVariables(out);
      return;
  }
}

size_t Term::Hash() const { return rep_->hash; }

namespace {

/// Whether an atom's spelling re-lexes as an atom (and not as a variable,
/// which an uppercase first letter would produce). Quoted otherwise.
bool AtomIsBare(const std::string& s) {
  if (s.empty()) return false;
  unsigned char first = static_cast<unsigned char>(s[0]);
  if (!(std::islower(first) || std::isdigit(first) || first == '_')) {
    return false;
  }
  for (char c : s) {
    unsigned char u = static_cast<unsigned char>(c);
    if (!(std::isalnum(u) || c == '_' || c == '\'' || c == '-')) return false;
  }
  return true;
}

std::string QuoteAtom(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Term::ToString() const {
  switch (kind()) {
    case TermKind::kAtom:
      return AtomIsBare(rep_->name) ? rep_->name : QuoteAtom(rep_->name);
    case TermKind::kVariable:
      return rep_->name;
    case TermKind::kFunction:
      return StrCat(rep_->name, "(",
                    JoinMapped(rep_->args, ",",
                               [](const Term& t) { return t.ToString(); }),
                    ")");
  }
  return "";
}

bool operator==(const Term& a, const Term& b) {
  if (a.rep_ == b.rep_) return true;
  if (a.Hash() != b.Hash()) return false;
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case TermKind::kAtom:
      return a.rep_->name == b.rep_->name;
    case TermKind::kVariable:
      return a.rep_->var_kind == b.rep_->var_kind &&
             a.rep_->name == b.rep_->name;
    case TermKind::kFunction:
      return a.rep_->name == b.rep_->name && a.rep_->args == b.rep_->args;
  }
  return false;
}

bool operator<(const Term& a, const Term& b) {
  if (a.kind() != b.kind()) return a.kind() < b.kind();
  switch (a.kind()) {
    case TermKind::kAtom:
      return a.rep_->name < b.rep_->name;
    case TermKind::kVariable:
      if (a.rep_->var_kind != b.rep_->var_kind)
        return a.rep_->var_kind < b.rep_->var_kind;
      return a.rep_->name < b.rep_->name;
    case TermKind::kFunction:
      if (a.rep_->name != b.rep_->name) return a.rep_->name < b.rep_->name;
      return a.rep_->args < b.rep_->args;
  }
  return false;
}

bool TermSubstitution::Bind(const Term& var, const Term& value) {
  assert(var.is_var());
  auto it = bindings_.find(var);
  if (it != bindings_.end()) return it->second == value;
  bindings_.emplace(var, value);
  return true;
}

void TermSubstitution::Unbind(const Term& var) { bindings_.erase(var); }

const Term* TermSubstitution::Lookup(const Term& var) const {
  auto it = bindings_.find(var);
  return it == bindings_.end() ? nullptr : &it->second;
}

Term TermSubstitution::Apply(const Term& t) const {
  switch (t.kind()) {
    case TermKind::kAtom:
      return t;
    case TermKind::kVariable: {
      const Term* bound = Lookup(t);
      return bound ? *bound : t;
    }
    case TermKind::kFunction: {
      std::vector<Term> new_args;
      new_args.reserve(t.args().size());
      bool changed = false;
      for (const Term& a : t.args()) {
        Term na = Apply(a);
        changed = changed || !(na == a);
        new_args.push_back(std::move(na));
      }
      if (!changed) return t;
      return Term::MakeFunc(t.functor(), std::move(new_args));
    }
  }
  return t;
}

void TermSubstitution::ApplyToRange(const TermSubstitution& other) {
  for (auto& [var, value] : bindings_) {
    value = other.Apply(value);
  }
}

std::string TermSubstitution::ToString() const {
  return StrCat(
      "[", JoinMapped(bindings_, ", ",
                      [](const std::pair<const Term, Term>& kv) {
                        return StrCat(kv.first.ToString(), " -> ",
                                      kv.second.ToString());
                      }),
      "]");
}

bool SortsCompatible(const Term& var, const Term& value) {
  assert(var.is_var());
  // Variables of either sort may alias each other: the V_O / V_C
  // disjointness the paper needs is about *names* sharing positions within
  // one rule (enforced positionally by the parser), not about bindings
  // created during unification — e.g. composing `pp(P,Y)` against a view's
  // `pp(P',Y')` must alias Y with the view's label variable Y' even though
  // Y's sort was defaulted from a Skolem-argument occurrence.
  if (value.is_var()) return true;
  switch (var.var_kind()) {
    case VarKind::kObjectId:
      // Object ids are atoms or function terms.
      return value.is_atom() || value.is_func();
    case VarKind::kLabelValue:
      // Labels/atomic values are atoms. (Set values are represented as set
      // patterns, handled in the rewrite layer, never as Terms.)
      return value.is_atom();
  }
  return false;
}

namespace {

bool Occurs(const Term& var, const Term& in) {
  switch (in.kind()) {
    case TermKind::kAtom:
      return false;
    case TermKind::kVariable:
      return var == in;
    case TermKind::kFunction:
      for (const Term& a : in.args()) {
        if (Occurs(var, a)) return true;
      }
      return false;
  }
  return false;
}

bool UnifyImpl(Term a, Term b, TermSubstitution* subst) {
  a = subst->Apply(a);
  b = subst->Apply(b);
  if (a == b) return true;
  if (a.is_var()) {
    if (!SortsCompatible(a, b)) return false;
    if (Occurs(a, b)) return false;
    TermSubstitution single;
    single.Bind(a, b);
    subst->ApplyToRange(single);
    return subst->Bind(a, b);
  }
  if (b.is_var()) return UnifyImpl(b, a, subst);
  if (a.is_atom() || b.is_atom()) return false;  // distinct atoms / atom-func
  if (a.functor() != b.functor() || a.args().size() != b.args().size()) {
    return false;
  }
  for (size_t i = 0; i < a.args().size(); ++i) {
    if (!UnifyImpl(a.args()[i], b.args()[i], subst)) return false;
  }
  return true;
}

}  // namespace

bool Unify(const Term& a, const Term& b, TermSubstitution* subst) {
  TermSubstitution scratch = *subst;
  if (!UnifyImpl(a, b, &scratch)) return false;
  *subst = std::move(scratch);
  return true;
}

}  // namespace tslrw
