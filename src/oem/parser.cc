#include "oem/parser.h"

#include "common/lexer.h"
#include "common/string_util.h"

namespace tslrw {

namespace {

/// Parses a ground term: IDENT | STRING | IDENT '(' term (',' term)* ')'.
Result<Term> ParseTerm(TokenCursor* cur) {
  const Token& tok = cur->Peek();
  if (tok.kind == TokenKind::kString) {
    return Term::MakeAtom(cur->Next().text);
  }
  if (tok.kind != TokenKind::kIdent) {
    return cur->ErrorHere("expected a term");
  }
  std::string head = cur->Next().text;
  if (!cur->TryConsume(TokenKind::kLParen)) {
    return Term::MakeAtom(std::move(head));
  }
  std::vector<Term> args;
  if (!cur->TryConsume(TokenKind::kRParen)) {
    while (true) {
      TSLRW_ASSIGN_OR_RETURN(Term arg, ParseTerm(cur));
      args.push_back(std::move(arg));
      if (cur->TryConsume(TokenKind::kComma)) continue;
      TSLRW_RETURN_NOT_OK(cur->Expect(TokenKind::kRParen).status());
      break;
    }
  }
  return Term::MakeFunc(std::move(head), std::move(args));
}

/// Parses `<oid label value>` recursively; inserts into \p db and returns
/// the oid so the caller can link it as a child or root.
Result<Oid> ParseObject(TokenCursor* cur, OemDatabase* db) {
  TSLRW_RETURN_NOT_OK(cur->Expect(TokenKind::kLAngle).status());
  TSLRW_ASSIGN_OR_RETURN(Term oid, ParseTerm(cur));
  Token label_tok = cur->Peek();
  if (label_tok.kind != TokenKind::kIdent &&
      label_tok.kind != TokenKind::kString) {
    return cur->ErrorHere("expected an object label");
  }
  std::string label = cur->Next().text;

  const Token& v = cur->Peek();
  if (v.kind == TokenKind::kLBrace) {
    cur->Next();
    TSLRW_RETURN_NOT_OK(db->PutSet(oid, label));
    while (!cur->TryConsume(TokenKind::kRBrace)) {
      if (cur->TryConsume(TokenKind::kAt)) {
        TSLRW_ASSIGN_OR_RETURN(Term ref, ParseTerm(cur));
        TSLRW_RETURN_NOT_OK(db->AddEdge(oid, ref));
        continue;
      }
      TSLRW_ASSIGN_OR_RETURN(Oid child, ParseObject(cur, db));
      TSLRW_RETURN_NOT_OK(db->AddEdge(oid, child));
    }
  } else if (v.kind == TokenKind::kString || v.kind == TokenKind::kIdent) {
    TSLRW_RETURN_NOT_OK(db->PutAtomic(oid, label, cur->Next().text));
  } else {
    return cur->ErrorHere("expected an atomic value or '{'");
  }
  TSLRW_RETURN_NOT_OK(cur->Expect(TokenKind::kRAngle).status());
  return oid;
}

}  // namespace

Result<OemDatabase> ParseOemDatabase(std::string_view text) {
  TSLRW_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  TokenCursor cur(std::move(tokens));
  TSLRW_RETURN_NOT_OK(cur.ExpectIdent("database"));
  TSLRW_ASSIGN_OR_RETURN(Token name, cur.Expect(TokenKind::kIdent));
  OemDatabase db(name.text);
  TSLRW_RETURN_NOT_OK(cur.Expect(TokenKind::kLBrace).status());
  while (!cur.TryConsume(TokenKind::kRBrace)) {
    if (cur.TryConsume(TokenKind::kAt)) {
      // A root that is also some object's child: defined at its first
      // occurrence, referenced here (the printer emits this form).
      TSLRW_ASSIGN_OR_RETURN(Term ref, ParseTerm(&cur));
      TSLRW_RETURN_NOT_OK(db.AddRoot(ref));
      continue;
    }
    TSLRW_ASSIGN_OR_RETURN(Oid root, ParseObject(&cur, &db));
    TSLRW_RETURN_NOT_OK(db.AddRoot(root));
  }
  if (!cur.AtEof()) {
    return cur.ErrorHere("trailing input after database block");
  }
  TSLRW_RETURN_NOT_OK(db.Validate());
  return db;
}

Result<Term> ParseGroundTerm(std::string_view text) {
  TSLRW_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  TokenCursor cur(std::move(tokens));
  TSLRW_ASSIGN_OR_RETURN(Term t, ParseTerm(&cur));
  if (!cur.AtEof()) {
    return cur.ErrorHere("trailing input after term");
  }
  if (!t.IsGround()) {
    return Status::ParseError(StrCat("term is not ground: ", t.ToString()));
  }
  return t;
}

}  // namespace tslrw
