#ifndef TSLRW_OEM_BISIM_H_
#define TSLRW_OEM_BISIM_H_

#include "oem/database.h"

namespace tslrw {

/// \brief The \S6 "Isomorphism" notion of OEM database equivalence.
///
/// Two databases are equivalent when object ids are ignored and only the
/// object–subobject structure matters: every root of D1 must match some
/// root of D2 (and vice versa) where objects match iff they have the same
/// label, the same atomic value if atomic, and *equivalent sets* of
/// subobjects if set-valued.
///
/// Implemented by partition refinement over the union of the two reachable
/// graphs, which handles cycles (the paper's "equivalent (i.e. isomorphic)
/// sets of subobjects" recursion is exactly bisimulation equivalence on the
/// unordered child relation).
bool StructurallyEquivalent(const OemDatabase& d1, const OemDatabase& d2);

}  // namespace tslrw

#endif  // TSLRW_OEM_BISIM_H_
