#ifndef TSLRW_OEM_DATABASE_H_
#define TSLRW_OEM_DATABASE_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "oem/term.h"

namespace tslrw {

/// Object ids are ground terms from the Herbrand universe (\S2): atoms
/// (e.g. a URL) or function terms (e.g. `f(p1)` minted by a TSL head).
using Oid = Term;

/// \brief The value of an OEM object: either an atomic datum or the set of
/// its subobjects (referenced by oid).
///
/// Per \S2, the value of a set object is "essentially the OEM subgraph
/// rooted at o"; we represent the value as the set of child oids and leave
/// the subgraph implicit in the containing Database.
class OemValue {
 public:
  static OemValue Atomic(std::string datum);
  static OemValue EmptySet();
  static OemValue Set(std::set<Oid> children);

  bool is_atomic() const { return atomic_.has_value(); }
  bool is_set() const { return !is_atomic(); }

  /// Requires is_atomic().
  const std::string& atom() const { return *atomic_; }
  /// Requires is_set().
  const std::set<Oid>& children() const { return children_; }

  /// Adds a child oid; requires is_set().
  void AddChild(const Oid& child) { children_.insert(child); }

  friend bool operator==(const OemValue& a, const OemValue& b) {
    return a.atomic_ == b.atomic_ && a.children_ == b.children_;
  }

 private:
  std::optional<std::string> atomic_;
  std::set<Oid> children_;
};

/// \brief One OEM object: an id, a label, and a value.
struct OemObject {
  Oid oid;
  std::string label;
  OemValue value;

  bool is_atomic() const { return value.is_atomic(); }
};

/// \brief A rooted OEM database: labeled objects with unique oids plus a set
/// of top-level (root) objects, the starting points for querying (\S2).
///
/// Objects not reachable from a root are ignored by equality and printing,
/// matching the paper ("we ignore objects that are not reachable from the
/// roots of the graph").
class OemDatabase {
 public:
  OemDatabase() = default;
  explicit OemDatabase(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Inserts an atomic object. Fails with InvalidArgument if \p oid is not
  /// ground, or if an object with the same oid but different content exists
  /// (oids are keys: oid -> label, value).
  Status PutAtomic(const Oid& oid, std::string label, std::string datum);

  /// Inserts a set object (children may be added later via AddEdge). If the
  /// oid already names a set object with the same label, the child sets are
  /// fused (set union) — the \S2 fusion semantics.
  Status PutSet(const Oid& oid, std::string label,
                std::set<Oid> children = {});

  /// Adds \p child to the set value of \p parent. Fails if \p parent is
  /// missing or atomic.
  Status AddEdge(const Oid& parent, const Oid& child);

  /// Marks \p oid as a top-level object.
  Status AddRoot(const Oid& oid);

  /// Looks up an object; nullptr if absent.
  const OemObject* Find(const Oid& oid) const;

  const std::set<Oid>& roots() const { return roots_; }
  /// All stored objects, reachable or not, in oid order.
  const std::map<Oid, OemObject>& objects() const { return objects_; }
  size_t size() const { return objects_.size(); }

  /// Oids reachable from the roots (the database proper).
  std::set<Oid> ReachableOids() const;

  /// Verifies that every referenced child and root oid names an object.
  Status Validate() const;

  /// \S3 equality: the reachable portions are *identical* — same oids, and
  /// per oid the same label, same atomic/set-ness, same atomic value, and
  /// identical child sets.
  bool Equals(const OemDatabase& other) const;

  /// Canonical, deterministic text rendering of the reachable portion (the
  /// inverse of ParseOemDatabase). Each object is rendered in full exactly
  /// once; shared or cyclic occurrences are rendered as `@oid` references.
  std::string ToString() const;

  friend bool operator==(const OemDatabase& a, const OemDatabase& b) {
    return a.Equals(b);
  }

 private:
  std::string name_;
  std::map<Oid, OemObject> objects_;
  std::set<Oid> roots_;
};

/// \brief A named collection of OEM sources: the mediator-side universe a
/// TSL query's `@source` annotations resolve against.
class SourceCatalog {
 public:
  /// Adds or replaces a source under db.name().
  void Put(OemDatabase db);

  /// Looks up a source by name; NotFound if absent.
  Result<const OemDatabase*> Find(std::string_view name) const;

  bool Contains(std::string_view name) const;
  const std::map<std::string, OemDatabase, std::less<>>& sources() const {
    return sources_;
  }

 private:
  std::map<std::string, OemDatabase, std::less<>> sources_;
};

}  // namespace tslrw

#endif  // TSLRW_OEM_DATABASE_H_
