#include "oem/database.h"

#include <cctype>
#include <deque>

#include "common/string_util.h"

namespace tslrw {

OemValue OemValue::Atomic(std::string datum) {
  OemValue v;
  v.atomic_ = std::move(datum);
  return v;
}

OemValue OemValue::EmptySet() { return OemValue(); }

OemValue OemValue::Set(std::set<Oid> children) {
  OemValue v;
  v.children_ = std::move(children);
  return v;
}

Status OemDatabase::PutAtomic(const Oid& oid, std::string label,
                              std::string datum) {
  if (!oid.IsGround()) {
    return Status::InvalidArgument(
        StrCat("object id must be ground: ", oid.ToString()));
  }
  auto it = objects_.find(oid);
  if (it != objects_.end()) {
    const OemObject& existing = it->second;
    if (existing.label != label || !existing.is_atomic() ||
        existing.value.atom() != datum) {
      return Status::InvalidArgument(
          StrCat("object id ", oid.ToString(),
                 " already bound to different content"));
    }
    return Status::OK();
  }
  objects_.emplace(
      oid, OemObject{oid, std::move(label), OemValue::Atomic(std::move(datum))});
  return Status::OK();
}

Status OemDatabase::PutSet(const Oid& oid, std::string label,
                           std::set<Oid> children) {
  if (!oid.IsGround()) {
    return Status::InvalidArgument(
        StrCat("object id must be ground: ", oid.ToString()));
  }
  auto it = objects_.find(oid);
  if (it != objects_.end()) {
    OemObject& existing = it->second;
    if (existing.label != label || existing.is_atomic()) {
      return Status::InvalidArgument(
          StrCat("object id ", oid.ToString(),
                 " already bound to different content"));
    }
    for (const Oid& c : children) existing.value.AddChild(c);
    return Status::OK();
  }
  objects_.emplace(oid, OemObject{oid, std::move(label),
                                  OemValue::Set(std::move(children))});
  return Status::OK();
}

Status OemDatabase::AddEdge(const Oid& parent, const Oid& child) {
  auto it = objects_.find(parent);
  if (it == objects_.end()) {
    return Status::NotFound(StrCat("no object ", parent.ToString()));
  }
  if (it->second.is_atomic()) {
    return Status::InvalidArgument(
        StrCat("atomic object ", parent.ToString(), " cannot have children"));
  }
  it->second.value.AddChild(child);
  return Status::OK();
}

Status OemDatabase::AddRoot(const Oid& oid) {
  if (!oid.IsGround()) {
    return Status::InvalidArgument(
        StrCat("root oid must be ground: ", oid.ToString()));
  }
  roots_.insert(oid);
  return Status::OK();
}

const OemObject* OemDatabase::Find(const Oid& oid) const {
  auto it = objects_.find(oid);
  return it == objects_.end() ? nullptr : &it->second;
}

std::set<Oid> OemDatabase::ReachableOids() const {
  std::set<Oid> seen;
  std::deque<Oid> work(roots_.begin(), roots_.end());
  while (!work.empty()) {
    Oid oid = work.front();
    work.pop_front();
    if (!seen.insert(oid).second) continue;
    const OemObject* obj = Find(oid);
    if (obj == nullptr || obj->is_atomic()) continue;
    for (const Oid& c : obj->value.children()) work.push_back(c);
  }
  return seen;
}

Status OemDatabase::Validate() const {
  for (const Oid& r : roots_) {
    if (Find(r) == nullptr) {
      return Status::NotFound(StrCat("dangling root ", r.ToString()));
    }
  }
  for (const auto& [oid, obj] : objects_) {
    if (obj.is_atomic()) continue;
    for (const Oid& c : obj.value.children()) {
      if (Find(c) == nullptr) {
        return Status::NotFound(StrCat("object ", oid.ToString(),
                                       " references missing child ",
                                       c.ToString()));
      }
    }
  }
  return Status::OK();
}

bool OemDatabase::Equals(const OemDatabase& other) const {
  std::set<Oid> mine = ReachableOids();
  std::set<Oid> theirs = other.ReachableOids();
  if (mine != theirs) return false;
  if (roots_ != other.roots_) return false;
  for (const Oid& oid : mine) {
    const OemObject* a = Find(oid);
    const OemObject* b = other.Find(oid);
    if (a == nullptr || b == nullptr) return false;
    if (a->label != b->label) return false;
    if (!(a->value == b->value)) return false;
  }
  return true;
}

namespace {

/// Quotes a datum when it is not a bare identifier.
std::string RenderDatum(const std::string& s) {
  bool bare = !s.empty();
  for (char c : s) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-')) {
      bare = false;
      break;
    }
  }
  if (bare && !std::isdigit(static_cast<unsigned char>(s[0]))) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

void RenderObject(const OemDatabase& db, const Oid& oid, int indent,
                  std::set<Oid>* rendered, std::string* out) {
  auto pad = [&](int n) { out->append(static_cast<size_t>(n) * 2, ' '); };
  pad(indent);
  if (rendered->count(oid) > 0) {
    // Shared or cyclic structure: reference an already-rendered object.
    out->append(StrCat("@", oid.ToString(), "\n"));
    return;
  }
  const OemObject* obj = db.Find(oid);
  if (obj == nullptr) {
    out->append(StrCat("@", oid.ToString(), "\n"));  // dangling reference
    return;
  }
  rendered->insert(oid);
  if (obj->is_atomic()) {
    out->append(StrCat("<", oid.ToString(), " ", RenderDatum(obj->label), " ",
                       RenderDatum(obj->value.atom()), ">\n"));
    return;
  }
  out->append(StrCat("<", oid.ToString(), " ", RenderDatum(obj->label),
                     " {\n"));
  for (const Oid& c : obj->value.children()) {
    RenderObject(db, c, indent + 1, rendered, out);
  }
  pad(indent);
  out->append("}>\n");
}

}  // namespace

std::string OemDatabase::ToString() const {
  std::string out = StrCat("database ", name_.empty() ? "db" : name_, " {\n");
  std::set<Oid> rendered;
  for (const Oid& r : roots_) {
    RenderObject(*this, r, 1, &rendered, &out);
  }
  out += "}\n";
  return out;
}

void SourceCatalog::Put(OemDatabase db) {
  std::string name = db.name();
  sources_.insert_or_assign(std::move(name), std::move(db));
}

Result<const OemDatabase*> SourceCatalog::Find(std::string_view name) const {
  auto it = sources_.find(name);
  if (it == sources_.end()) {
    return Status::NotFound(StrCat("no source named ", name));
  }
  return &it->second;
}

bool SourceCatalog::Contains(std::string_view name) const {
  return sources_.find(name) != sources_.end();
}

}  // namespace tslrw
