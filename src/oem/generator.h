#ifndef TSLRW_OEM_GENERATOR_H_
#define TSLRW_OEM_GENERATOR_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "oem/database.h"

namespace tslrw {

/// \brief Parameters for synthetic OEM database generation.
///
/// Used by property tests (randomized soundness validation of rewritings)
/// and by the evaluation benchmarks (CL-QNC data-complexity sweeps). The
/// shape loosely follows Fig. 3: shallow trees of records whose leaves draw
/// labels and atomic values from small alphabets, with optional DAG sharing
/// to exercise the copy semantics of set-valued bindings.
struct GeneratorOptions {
  uint64_t seed = 42;
  /// Number of top-level (root) objects.
  int num_roots = 10;
  /// Maximum nesting depth below a root.
  int max_depth = 3;
  /// Maximum children per set object.
  int max_fanout = 4;
  /// Labels are drawn uniformly from l0..l{num_labels-1}.
  int num_labels = 5;
  /// Atomic values are drawn uniformly from v0..v{num_values-1}.
  int num_values = 6;
  /// Probability that a non-leaf position becomes an atomic object.
  double atomic_probability = 0.5;
  /// Probability that a child slot reuses an existing object (DAG sharing).
  double share_probability = 0.0;
  /// Label given to every root object ("" = random).
  std::string root_label;
};

/// \brief Generates a pseudo-random OEM database named \p name.
///
/// Deterministic for a fixed options struct. The result always validates.
OemDatabase GenerateOemDatabase(const std::string& name,
                                const GeneratorOptions& options);

/// \brief Builds the bibliographic database of the paper's Fig. 3: two
/// top-level publication objects with title / author / venue / year
/// subobjects ("Views" by A. Gupta, "Constraint..." at SIGMOD 1993).
OemDatabase MakeFig3Database(const std::string& name = "db");

}  // namespace tslrw

#endif  // TSLRW_OEM_GENERATOR_H_
