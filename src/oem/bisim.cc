#include "oem/bisim.h"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/string_util.h"

namespace tslrw {

namespace {

struct Node {
  const OemObject* obj;
  int side;  // 0 = d1, 1 = d2
  std::vector<size_t> children;
  size_t block = 0;  // current partition block
};

}  // namespace

bool StructurallyEquivalent(const OemDatabase& d1, const OemDatabase& d2) {
  // Build the disjoint union of the two reachable graphs.
  std::vector<Node> nodes;
  std::map<std::pair<int, Oid>, size_t> index;
  const OemDatabase* dbs[2] = {&d1, &d2};
  for (int side = 0; side < 2; ++side) {
    for (const Oid& oid : dbs[side]->ReachableOids()) {
      const OemObject* obj = dbs[side]->Find(oid);
      if (obj == nullptr) return false;  // dangling reference
      index[{side, oid}] = nodes.size();
      nodes.push_back(Node{obj, side, {}, 0});
    }
  }
  for (auto& [key, idx] : index) {
    const Node& n = nodes[idx];
    if (n.obj->is_atomic()) continue;
    for (const Oid& c : n.obj->value.children()) {
      auto it = index.find({key.first, c});
      if (it == index.end()) return false;
      nodes[idx].children.push_back(it->second);
    }
  }

  // Initial partition: (label, atomicity, atomic value).
  std::map<std::string, size_t> sig_to_block;
  for (Node& n : nodes) {
    std::string sig = StrCat(n.obj->label, "\x01",
                             n.obj->is_atomic() ? "a" : "s", "\x01",
                             n.obj->is_atomic() ? n.obj->value.atom() : "");
    auto [it, inserted] = sig_to_block.emplace(sig, sig_to_block.size());
    (void)inserted;
    n.block = it->second;
  }

  // Refine: a node's signature is its block plus the *set* of child blocks.
  bool changed = true;
  while (changed) {
    changed = false;
    std::map<std::vector<size_t>, size_t> next;
    std::vector<size_t> new_block(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
      std::vector<size_t> sig;
      sig.push_back(nodes[i].block);
      std::vector<size_t> kids;
      kids.reserve(nodes[i].children.size());
      for (size_t c : nodes[i].children) kids.push_back(nodes[c].block);
      std::sort(kids.begin(), kids.end());
      kids.erase(std::unique(kids.begin(), kids.end()), kids.end());
      sig.insert(sig.end(), kids.begin(), kids.end());
      auto [it, inserted] = next.emplace(std::move(sig), next.size());
      (void)inserted;
      new_block[i] = it->second;
    }
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (new_block[i] != nodes[i].block) changed = true;
    }
    if (changed) {
      for (size_t i = 0; i < nodes.size(); ++i) nodes[i].block = new_block[i];
    }
  }

  // Roots must match up to block equality, in both directions.
  auto root_blocks = [&](int side) {
    std::vector<size_t> blocks;
    for (const Oid& r : dbs[side]->roots()) {
      auto it = index.find({side, r});
      if (it != index.end()) blocks.push_back(nodes[it->second].block);
    }
    std::sort(blocks.begin(), blocks.end());
    blocks.erase(std::unique(blocks.begin(), blocks.end()), blocks.end());
    return blocks;
  };
  return root_blocks(0) == root_blocks(1);
}

}  // namespace tslrw
