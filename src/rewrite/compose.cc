#include "rewrite/compose.h"

#include <deque>
#include <map>
#include <utility>

#include "common/string_util.h"
#include "rewrite/substitution.h"
#include "tsl/normal_form.h"

namespace tslrw {

namespace {

/// Unifies the remaining steps of \p path (from index \p i) against the
/// head node \p node, collecting every successful unifier into \p out.
void Descend(const Path& path, size_t i, const ObjectPattern& node,
             Substitution subst, std::vector<Substitution>* out) {
  if (!subst.UnifyTerms(path.steps[i].oid, node.oid)) return;
  if (!subst.UnifyTerms(path.steps[i].label, node.label)) return;
  const size_t d = i + 1;
  if (d == path.steps.size()) {
    // Tail position.
    if (path.tail.is_term()) {
      const Term& t = path.tail.term();
      if (node.value.is_term()) {
        if (subst.UnifyTerms(t, node.value.term())) {
          out->push_back(std::move(subst));
        }
      } else if (t.is_var() && subst.BindSet(t, node.value.set())) {
        // The condition's tail variable denotes the view object's set
        // value: bind it to the constructed members.
        out->push_back(std::move(subst));
      }
      return;
    }
    // Tail `{}`: the view object must be set-valued.
    if (node.value.is_set()) {
      out->push_back(std::move(subst));
    } else if (node.value.term().is_var() &&
               subst.BindSet(node.value.term(), SetPattern{})) {
      // Copied value: the copied source object must itself be a set.
      out->push_back(std::move(subst));
    }
    return;
  }
  // The path continues below this head object.
  if (node.value.is_set()) {
    for (const ObjectPattern& member : node.value.set()) {
      Descend(path, d, member, subst, out);
    }
    return;
  }
  const Term& u = node.value.term();
  if (u.is_var()) {
    // The view copies the source subgraph bound to u here; the remaining
    // path must hold inside that subgraph. Pushing it into the view body
    // as a set binding expresses exactly that (copied objects keep their
    // source oids).
    Path rest;
    rest.steps.assign(path.steps.begin() + static_cast<long>(d),
                      path.steps.end());
    rest.tail = path.tail;
    rest.source = path.source;
    if (subst.BindSet(u, SetPattern{UnflattenPath(rest).pattern})) {
      out->push_back(std::move(subst));
    }
  }
  // Below an atomic head value there is nothing to match.
}

std::vector<Substitution> UnifyPathWithHead(const Path& path,
                                            const ObjectPattern& head) {
  std::vector<Substitution> out;
  Descend(path, 0, head, Substitution(), &out);
  return out;
}

}  // namespace

const TslQuery& ComposeCache::RenamedView(const TslQuery& view,
                                          int instance) {
  auto key = std::make_pair(view.name, instance);
  auto it = renamed_.find(key);
  if (it == renamed_.end()) {
    it = renamed_
             .emplace(std::move(key),
                      RenameVariablesApart(view, StrCat("_i", instance)))
             .first;
  }
  return it->second;
}

Result<TslRuleSet> ComposeWithViews(const TslQuery& rewriting,
                                    const std::vector<TslQuery>& views,
                                    ComposeCache* cache) {
  std::map<std::string, const TslQuery*> by_name;
  for (const TslQuery& v : views) by_name[v.name] = &v;

  std::deque<TslQuery> work{ToNormalForm(rewriting)};
  TslRuleSet result;
  int instance = 0;
  // Far above anything legal inputs produce; cyclic view definitions (a
  // view whose body refers to itself) are the only way to approach it.
  constexpr int kMaxSteps = 100000;
  for (int steps = 0; !work.empty(); ++steps) {
    if (steps > kMaxSteps) {
      return Status::InvalidArgument(
          "composition did not terminate; are the view definitions cyclic?");
    }
    TslQuery rule = std::move(work.front());
    work.pop_front();

    size_t view_cond = rule.body.size();
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (by_name.count(rule.body[i].source) > 0) {
        view_cond = i;
        break;
      }
    }
    if (view_cond == rule.body.size()) {
      // Fully resolved: keep if not a duplicate.
      bool duplicate = false;
      for (const TslQuery& r : result.rules) duplicate = duplicate || r == rule;
      if (!duplicate) result.rules.push_back(std::move(rule));
      continue;
    }

    TSLRW_ASSIGN_OR_RETURN(Path path, FlattenPath(rule.body[view_cond]));
    for (const Path::Step& step : path.steps) {
      if (step.kind != StepKind::kChild) {
        return Status::IllFormedQuery(
            StrCat("condition ", rule.body[view_cond].ToString(),
                   " uses a regular path step over a view; composition of "
                   "regular path expressions is unsupported (\\S7 future "
                   "work)"));
      }
    }
    const TslQuery& view_def = *by_name.at(rule.body[view_cond].source);
    ++instance;
    TslQuery renamed_here;  // only populated on the uncached path
    if (cache == nullptr) {
      renamed_here = RenameVariablesApart(view_def, StrCat("_i", instance));
    }
    const TslQuery& view =
        cache ? cache->RenamedView(view_def, instance) : renamed_here;
    for (const Substitution& subst : UnifyPathWithHead(path, view.head)) {
      TslQuery resolvent;
      resolvent.name = rule.name;
      resolvent.head = subst.Apply(rule.head);
      resolvent.body.reserve(rule.body.size() - 1 + view.body.size());
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (i == view_cond) continue;
        resolvent.body.push_back(subst.Apply(rule.body[i]));
      }
      for (const Condition& vc : view.body) {
        resolvent.body.push_back(subst.Apply(vc));
      }
      work.push_back(ToNormalForm(std::move(resolvent)));
    }
    // No unifier: this resolvent can never produce answers; drop it.
  }
  return result;
}

Result<TslRuleSet> ComposeWithViews(const TslRuleSet& rewriting,
                                    const std::vector<TslQuery>& views) {
  TslRuleSet out;
  for (const TslQuery& rule : rewriting.rules) {
    TSLRW_ASSIGN_OR_RETURN(TslRuleSet part, ComposeWithViews(rule, views));
    for (TslQuery& r : part.rules) {
      bool duplicate = false;
      for (const TslQuery& existing : out.rules) {
        duplicate = duplicate || existing == r;
      }
      if (!duplicate) out.rules.push_back(std::move(r));
    }
  }
  return out;
}

}  // namespace tslrw
