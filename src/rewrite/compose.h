#ifndef TSLRW_REWRITE_COMPOSE_H_
#define TSLRW_REWRITE_COMPOSE_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "tsl/ast.h"

namespace tslrw {

/// \brief Memo for repeated compositions against one fixed view set: caches
/// the fresh-variable instantiation `RenameVariablesApart(view, "_iN")` per
/// (view, instance number), so verifying many candidates over the same
/// views renames each view head once per instantiation depth instead of
/// once per candidate. Instance numbers restart at 1 for every
/// ComposeWithViews call and are assigned in the same deterministic BFS
/// order, which is what makes the cached copy byte-identical to the one the
/// uncached call would build.
///
/// Not thread-safe: the parallel rewriting pipeline keeps one per worker.
class ComposeCache {
 public:
  /// The view named \p view.name renamed apart with suffix `_i<instance>`,
  /// computed on first use.
  const TslQuery& RenamedView(const TslQuery& view, int instance);

  size_t size() const { return renamed_.size(); }

 private:
  std::map<std::pair<std::string, int>, TslQuery> renamed_;
};

/// \brief Query–view composition (\S3.1 Step 2A): given a rewriting query
/// Q' whose body refers to views by name, substitutes each `@View`
/// condition by the view's body, unifying the condition's path against the
/// view's head ("extending resolution and unification for semistructured
/// data").
///
/// Mechanics per `@View` path condition:
///  - steps unify top-down against the view head tree; a step descending
///    into a head set value may unify with *any* member, so one condition
///    can yield several resolvents — the result is therefore a union of
///    rules (TSL rule sets are closed under composition, unlike MSL/StruQL,
///    \S6);
///  - a path reaching a head position whose value is a view (copy)
///    variable pushes its remaining steps below that variable into the view
///    body (a set binding), expressing that the copied source subgraph must
///    contain the rest of the path;
///  - a path *tail* variable landing on a head set value is bound to that
///    set pattern; on a head term it unifies with it.
///
/// View body variables are renamed apart per condition instance, so two
/// conditions over one view join only where the unifiers force them to
/// (see (V1)o(Q4)n in Example 3.1, whose two conditions yield X'/X'' and
/// leland-constrained copies).
///
/// Conditions over sources that are not in \p views pass through untouched.
/// Resolvents with no unifier are dropped; if nothing survives, the result
/// is the empty rule set (a query that returns nothing).
Result<TslRuleSet> ComposeWithViews(const TslQuery& rewriting,
                                    const std::vector<TslQuery>& views,
                                    ComposeCache* cache = nullptr);

/// \brief Rule-set overload: composes each rule and unions the results.
Result<TslRuleSet> ComposeWithViews(const TslRuleSet& rewriting,
                                    const std::vector<TslQuery>& views);

}  // namespace tslrw

#endif  // TSLRW_REWRITE_COMPOSE_H_
