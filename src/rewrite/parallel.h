#ifndef TSLRW_REWRITE_PARALLEL_H_
#define TSLRW_REWRITE_PARALLEL_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "equiv/equivalence.h"
#include "rewrite/candidate.h"
#include "rewrite/chase.h"
#include "rewrite/rewriter.h"
#include "tsl/ast.h"

namespace tslrw {

/// \brief Steps 1B–2 of RewriteQuery on a worker pool (docs/PARALLELISM.md).
///
/// The enumeration stays on the calling thread and is a cheap producer:
/// each emitted atom subset becomes a named candidate that is batched into
/// a bounded work queue. Workers run the expensive per-candidate work —
/// chase (Step 1C), composition (Step 2A), and the \S4 equivalence test —
/// each with its own EquivalenceTester clone and ComposeCache, sharing
/// α-invariant memos (the whole verification outcome by a cheap α-sound
/// fingerprint of the candidate body, the chase by canonical candidate
/// body under constraints, and the verdict by a fingerprint of the
/// composed rule set) plus a dedupe of byte-identical candidate bodies.
/// Outcomes are committed strictly in enumeration order by
/// replaying the sequential loop's decisions, so `result` (rewritings,
/// candidates_generated/tested, truncation) and any returned hard-error
/// Status are byte-identical to the `parallelism = 1` path.
///
/// \param enumerator the Step 1B enumerator (already holding the atoms).
/// \param workers worker-thread count; callers pass a resolved value >= 2.
/// \param result receives counters and rewritings, exactly as the
///        sequential loop would have filled them.
/// \param complete receives CandidateEnumerator::Enumerate's completion
///        flag (false when max_candidates/should_stop cut the search or a
///        hard error stopped it), for the caller's `truncated` computation.
/// \return the first hard error in enumeration order, or OK.
Status VerifyCandidatesInParallel(const TslQuery& chased_query,
                                  const std::vector<TslQuery>& chased_views,
                                  const ChaseOptions& chase_options,
                                  const EquivalenceTester& tester,
                                  const CandidateEnumerator& enumerator,
                                  const RewriteOptions& options,
                                  size_t workers, RewriteResult* result,
                                  bool* complete);

}  // namespace tslrw

#endif  // TSLRW_REWRITE_PARALLEL_H_
