#include "rewrite/minimize.h"

#include "equiv/equivalence.h"
#include "tsl/validate.h"

namespace tslrw {

Result<TslQuery> MinimizeQuery(const TslQuery& query,
                               const ChaseOptions& options) {
  TSLRW_ASSIGN_OR_RETURN(TslQuery current, ChaseQuery(query, options));
  bool changed = true;
  while (changed && current.body.size() > 1) {
    changed = false;
    for (size_t i = 0; i < current.body.size(); ++i) {
      TslQuery candidate = current;
      candidate.body.erase(candidate.body.begin() + static_cast<long>(i));
      if (!CheckSafety(candidate).ok()) continue;
      TSLRW_ASSIGN_OR_RETURN(bool equivalent,
                             AreEquivalent(candidate, current, options));
      if (equivalent) {
        current = std::move(candidate);
        changed = true;
        break;
      }
    }
  }
  return current;
}

}  // namespace tslrw
