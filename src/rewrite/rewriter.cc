#include "rewrite/rewriter.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/string_util.h"
#include "equiv/equivalence.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rewrite/candidate.h"
#include "rewrite/compose.h"
#include "rewrite/parallel.h"
#include "rewrite/view_index.h"
#include "tsl/normal_form.h"
#include "tsl/validate.h"

namespace tslrw {

namespace {

/// Resolves RewriteOptions::parallelism: 0 means hardware concurrency.
size_t ResolveParallelism(size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

using SteadyClock = std::chrono::steady_clock;

uint64_t ElapsedUs(SteadyClock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          SteadyClock::now() - start)
          .count());
}

/// Chases the query and every view; NotOk on hard errors. An unsatisfiable
/// query is surfaced as an empty optional; unsatisfiable views (always
/// empty) are silently dropped.
struct ChasedInputs {
  TslQuery query;
  std::vector<TslQuery> views;
  bool query_unsatisfiable = false;
};

Result<ChasedInputs> ChaseInputs(const TslQuery& query,
                                 const std::vector<TslQuery>& views,
                                 const ChaseOptions& chase_options) {
  if (UsesRegexSteps(query)) {
    return Status::IllFormedQuery(
        "rewriting queries with regular path expressions (l+, **) is the "
        "paper's future work (\\S7); only plain TSL bodies are supported");
  }
  for (const TslQuery& view : views) {
    if (UsesRegexSteps(view)) {
      return Status::IllFormedQuery(
          StrCat("view ", view.name,
                 " uses regular path expressions; rewriting over such views "
                 "is unsupported (\\S7 future work)"));
    }
  }
  ChasedInputs out;
  Result<TslQuery> chased_query = ChaseQuery(query, chase_options);
  if (!chased_query.ok()) {
    if (!chased_query.status().IsUnsatisfiable()) {
      return chased_query.status();
    }
    out.query_unsatisfiable = true;
    return out;
  }
  out.query = std::move(chased_query).value();
  for (const TslQuery& view : views) {
    TSLRW_RETURN_NOT_OK(ValidateQuery(view));
    if (view.name.empty()) {
      return Status::InvalidArgument(
          "views must be named; the name is the rewritten query's source");
    }
    Result<TslQuery> cv = ChaseQuery(view, chase_options);
    if (!cv.ok()) {
      if (cv.status().IsUnsatisfiable()) continue;  // view is always empty
      return cv.status();
    }
    out.views.push_back(std::move(cv).value());
  }
  return out;
}

/// The indexed replacement for ChaseInputs, taken when options.view_index
/// covers \p views: the query is chased as usual, but the per-view work is
/// answered from the compiled catalog — stored offline chase outcomes for
/// views whose structural signature admits a containment mapping into the
/// chased query, nothing for views the signature rules out. A covered
/// catalog has no regex, unnamed, or invalid views (the compiler refuses
/// to serve one), so the full scan's per-view checks cannot fire and
/// skipping them is unobservable; the result is byte-identical by the
/// signature soundness argument in docs/CATALOG.md.
Result<ChasedInputs> ChaseInputsIndexed(const TslQuery& query,
                                        const std::vector<TslQuery>& views,
                                        const ChaseOptions& chase_options,
                                        const ViewSetIndex& index,
                                        ViewProbeOutcome* outcome) {
  if (UsesRegexSteps(query)) {
    return Status::IllFormedQuery(
        "rewriting queries with regular path expressions (l+, **) is the "
        "paper's future work (\\S7); only plain TSL bodies are supported");
  }
  ChasedInputs out;
  Result<TslQuery> chased_query = ChaseQuery(query, chase_options);
  if (!chased_query.ok()) {
    if (!chased_query.status().IsUnsatisfiable()) {
      return chased_query.status();
    }
    out.query_unsatisfiable = true;
    return out;
  }
  out.query = std::move(chased_query).value();
  TSLRW_ASSIGN_OR_RETURN(
      std::optional<std::vector<TslQuery>> probed,
      index.ChasedViewsFor(out.query, views, chase_options, outcome));
  if (!probed.has_value()) {
    return Status::Internal(
        "view index declined a view set it claimed to cover");
  }
  out.views = std::move(*probed);
  return out;
}

}  // namespace

Result<RewriteResult> RewriteQuery(const TslQuery& query,
                                   const std::vector<TslQuery>& views,
                                   const RewriteOptions& options) {
  TSLRW_RETURN_NOT_OK(ValidateQuery(query));
  ScopedSpan rewrite_span(options.tracer, "rewrite");
  rewrite_span.Annotate("views", static_cast<uint64_t>(views.size()));
  CountIf(options.metrics, "rewrite.queries");
  RewriteResult result;
  ChaseOptions chase_options;
  chase_options.constraints = options.constraints;
  // The constraints describe the source data; candidate bodies contain
  // conditions over the views, whose answer objects may reuse source label
  // spellings (V1's head label is `p`) — exempt them.
  for (const TslQuery& view : views) {
    chase_options.constraint_exempt_sources.insert(view.name);
  }
  // The fired-constraints sink is wired only while chasing the inputs, on
  // this thread: candidate chases run on worker threads under parallelism,
  // and excluding them everywhere keeps the result byte-identical across
  // parallelism levels (and the shared set race-free).
  ChaseOptions input_chase_options = chase_options;
  input_chase_options.fired_constraints = &result.fired_constraints;
  ScopedSpan chase_span(options.tracer, "rewrite.chase_inputs");
  const bool indexed =
      options.view_index != nullptr && options.view_index->CoversViews(views);
  ViewProbeOutcome probe;
  ChasedInputs inputs;
  if (indexed) {
    TSLRW_ASSIGN_OR_RETURN(
        inputs, ChaseInputsIndexed(query, views, input_chase_options,
                                   *options.view_index, &probe));
    CountIf(options.metrics, "catalog.index_probes");
    if (options.metrics != nullptr) {
      options.metrics->GetCounter("catalog.index_views_admitted")
          ->Increment(probe.admitted);
      options.metrics->GetCounter("catalog.index_views_skipped")
          ->Increment(probe.skipped);
    }
    chase_span.Annotate("index_probe", "hit");
    chase_span.Annotate("index_skipped", static_cast<uint64_t>(probe.skipped));
  } else {
    if (options.view_index != nullptr) {
      CountIf(options.metrics, "catalog.index_misses");
      chase_span.Annotate("index_probe", "miss");
    }
    TSLRW_ASSIGN_OR_RETURN(
        inputs, ChaseInputs(query, views, input_chase_options));
  }
  chase_span.Annotate("live_views", static_cast<uint64_t>(inputs.views.size()));
  chase_span.EndNow();
  if (inputs.query_unsatisfiable) {
    rewrite_span.Annotate("unsatisfiable", "true");
    CountIf(options.metrics, "rewrite.unsatisfiable_queries");
    result.query_unsatisfiable = true;
    return result;
  }
  const TslQuery& q = inputs.query;
  result.chased_query = q;

  // Step 1A: mappings from each view body into the query body, turned into
  // candidate atoms.
  ScopedSpan mappings_span(options.tracer, "rewrite.mappings");
  TSLRW_ASSIGN_OR_RETURN(
      std::vector<CandidateAtom> atoms,
      BuildCandidateAtoms(q, inputs.views, &result.mappings_found));
  for (const CandidateAtom& atom : atoms) {
    if (atom.is_view) result.views_touched.insert(atom.condition.source);
  }
  mappings_span.Annotate("mappings", static_cast<uint64_t>(result.mappings_found));
  mappings_span.Annotate("candidate_atoms", static_cast<uint64_t>(atoms.size()));
  mappings_span.EndNow();

  // Steps 1B-1C-2: assemble, chase, compose, and verify candidates. The
  // query side of every equivalence test is fixed: decompose it once.
  TSLRW_ASSIGN_OR_RETURN(
      EquivalenceTester tester,
      EquivalenceTester::Make(TslRuleSet::Single(q), chase_options));
  Status failure;  // first hard error inside the enumeration callback
  CandidateEnumerator enumerator(std::move(atoms), q.body.size(), options);
  const size_t workers = ResolveParallelism(options.parallelism);
  ScopedSpan search_span(options.tracer, "rewrite.search");
  search_span.Annotate("workers", static_cast<uint64_t>(workers));
  // Per-phase wall-time histograms on the sequential path, where the three
  // phases run inline on this thread. (The parallel path times nothing per
  // candidate: phases interleave across workers and memos skip them.)
  Histogram* chase_us_hist = nullptr;
  Histogram* compose_us_hist = nullptr;
  Histogram* equiv_us_hist = nullptr;
  if (options.metrics != nullptr && workers <= 1) {
    chase_us_hist = options.metrics->GetHistogram("rewrite.phase.chase_us");
    compose_us_hist = options.metrics->GetHistogram("rewrite.phase.compose_us");
    equiv_us_hist = options.metrics->GetHistogram("rewrite.phase.equiv_us");
  }
  const auto verify_start = std::chrono::steady_clock::now();
  bool complete = true;
  if (workers > 1) {
    failure = VerifyCandidatesInParallel(q, inputs.views, chase_options,
                                         tester, enumerator, options, workers,
                                         &result, &complete);
  } else {
    // The exact legacy sequential path: no worker pool, no memo caches. The
    // parallel pipeline (rewrite/parallel.cc) replays these decisions in
    // enumeration order — keep the two in lockstep.
    std::vector<std::vector<size_t>> accepted_atom_sets;
    complete = enumerator.Enumerate([&](const std::vector<size_t>& chosen) {
      ++result.candidates_generated;
      if (options.prune_dominated) {
        // `chosen` is sorted ascending by enumeration construction, and each
        // accepted entry is a former `chosen`.
        for (const std::vector<size_t>& prior : accepted_atom_sets) {
          if (std::includes(chosen.begin(), chosen.end(), prior.begin(),
                            prior.end())) {
            return true;  // dominated by an accepted, smaller rewriting
          }
        }
      }

      TslQuery candidate;
      candidate.name = StrCat(q.name.empty() ? "rewriting" : q.name, "_rw",
                              result.candidates_generated);
      candidate.head = q.head;  // Lemma 5.4
      for (size_t i : chosen) {
        candidate.body.push_back(enumerator.atoms()[i].condition);
      }
      if (!CheckSafety(candidate).ok()) return true;  // unsafe: skip

      // Step 1C: label inference + chase of the candidate.
      const bool timed = chase_us_hist != nullptr;
      auto phase_start = timed ? SteadyClock::now() : SteadyClock::time_point{};
      Result<TslQuery> chased = ChaseQuery(candidate, chase_options);
      if (timed) chase_us_hist->Observe(ElapsedUs(phase_start));
      if (!chased.ok()) {
        if (chased.status().IsUnsatisfiable()) return true;
        failure = chased.status();
        return false;
      }

      // Step 2: compose with the views and test equivalence with the query.
      ++result.candidates_tested;
      if (timed) phase_start = SteadyClock::now();
      Result<TslRuleSet> composed = ComposeWithViews(*chased, inputs.views);
      if (timed) compose_us_hist->Observe(ElapsedUs(phase_start));
      if (!composed.ok()) {
        failure = composed.status();
        return false;
      }
      if (timed) phase_start = SteadyClock::now();
      Result<bool> equivalent = tester.EquivalentTo(*composed);
      if (timed) equiv_us_hist->Observe(ElapsedUs(phase_start));
      if (!equivalent.ok()) {
        failure = equivalent.status();
        return false;
      }
      if (*equivalent) {
        accepted_atom_sets.push_back(chosen);
        result.rewritings.push_back(std::move(candidate));
      }
      return true;
    });
  }
  result.verify_wall_ticks = ElapsedUs(verify_start);
  if (!failure.ok()) {
    CountIf(options.metrics, "rewrite.errors");
    return failure;
  }
  result.truncated = !complete;
  // Deterministic facts go on the span; scheduling-dependent diagnostics
  // (memo hits, batches, wall time) go to metrics only, which keeps the
  // trace byte-identical at any parallelism (docs/OBSERVABILITY.md).
  search_span.Annotate("candidates_generated",
                       static_cast<uint64_t>(result.candidates_generated));
  search_span.Annotate("candidates_tested",
                       static_cast<uint64_t>(result.candidates_tested));
  search_span.Annotate("rewritings", static_cast<uint64_t>(result.rewritings.size()));
  search_span.Annotate("truncated", result.truncated ? "true" : "false");
  search_span.EndNow();
  if (options.metrics != nullptr) {
    MetricRegistry& m = *options.metrics;
    m.GetCounter("rewrite.mappings_found")->Increment(result.mappings_found);
    m.GetCounter("rewrite.candidates_generated")
        ->Increment(result.candidates_generated);
    m.GetCounter("rewrite.candidates_tested")
        ->Increment(result.candidates_tested);
    m.GetCounter("rewrite.rewritings_found")
        ->Increment(result.rewritings.size());
    m.GetCounter("rewrite.chase_cache_hits")
        ->Increment(result.chase_cache_hits);
    m.GetCounter("rewrite.equiv_cache_hits")
        ->Increment(result.equiv_cache_hits);
    m.GetCounter("rewrite.batches_dispatched")
        ->Increment(result.batches_dispatched);
    if (result.truncated) m.GetCounter("rewrite.truncated")->Increment();
    m.GetHistogram("rewrite.verify_us")->Observe(result.verify_wall_ticks);
  }
  if (result.truncated && options.strict_limits) {
    return Status::ResourceExhausted(
        StrCat("candidate search stopped after ", result.candidates_generated,
               " candidate(s) (max_candidates=", options.max_candidates,
               options.should_stop ? ", or the budget hook fired" : "",
               "); rewritings may have been missed"));
  }
  return result;
}

Result<RewriteResult> RewriteSinglePath(const TslQuery& query,
                                        const TslQuery& view,
                                        const RewriteOptions& options) {
  TslQuery normal = ToNormalForm(query);
  if (normal.body.size() != 1) {
    return Status::InvalidArgument(
        StrCat("RewriteSinglePath needs a single path condition; got ",
               normal.body.size()));
  }
  RewriteOptions single = options;
  single.require_total = true;  // the one condition must become the view
  return RewriteQuery(query, {view}, single);
}

}  // namespace tslrw
