#include "rewrite/mapping.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"

namespace tslrw {

namespace {

/// MatchInto with an undo trail: every variable freshly bound below this
/// call is recorded in \p trail, and a failed branch unbinds its own suffix
/// of the trail instead of restoring a full copy of the substitution (the
/// copy is O(bindings) per function term; the trail is O(bindings *made*).
/// bench_mapping's BM_MatchIntoFunctionTerms measures the difference).
bool MatchIntoImpl(const Term& from, const Term& to, Substitution* subst,
                   std::vector<Term>* trail) {
  switch (from.kind()) {
    case TermKind::kAtom:
      return from == to;
    case TermKind::kVariable: {
      if (!SortsCompatible(from, to)) return false;
      if (const Term* bound = subst->LookupTerm(from)) return *bound == to;
      if (subst->LookupSet(from) != nullptr) return false;
      if (!subst->BindTerm(from, to)) return false;
      trail->push_back(from);  // fresh binding: undone on backtrack
      return true;
    }
    case TermKind::kFunction: {
      if (!to.is_func() || to.functor() != from.functor() ||
          to.args().size() != from.args().size()) {
        return false;
      }
      const size_t mark = trail->size();
      for (size_t i = 0; i < from.args().size(); ++i) {
        if (!MatchIntoImpl(from.args()[i], to.args()[i], subst, trail)) {
          for (size_t j = trail->size(); j > mark; --j) {
            subst->UnbindTerm((*trail)[j - 1]);
          }
          trail->resize(mark);
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

}  // namespace

bool MatchInto(const Term& from, const Term& to, Substitution* subst) {
  std::vector<Term> trail;
  if (MatchIntoImpl(from, to, subst, &trail)) return true;
  // Leave *subst exactly as given on failure (the documented contract).
  for (size_t j = trail.size(); j > 0; --j) subst->UnbindTerm(trail[j - 1]);
  return false;
}

namespace {

/// The subpattern of \p to below depth \p d, as a one-member set pattern —
/// the right-hand side of a set mapping.
SetPattern RemainderSet(const Path& to, size_t d) {
  Path suffix;
  suffix.steps.assign(to.steps.begin() + static_cast<long>(d),
                      to.steps.end());
  suffix.tail = to.tail;
  suffix.source = to.source;
  return SetPattern{UnflattenPath(suffix).pattern};
}

/// Tries to map path \p from into path \p to under \p subst.
bool MapPathInto(const Path& from, const Path& to, Substitution* subst) {
  if (from.source != to.source) return false;
  if (from.steps.size() > to.steps.size()) return false;
  Substitution scratch = *subst;
  for (size_t i = 0; i < from.steps.size(); ++i) {
    // Regular-path steps only map onto steps of the identical kind (the
    // conservative choice; rewriting theory for RPEs is \S7 future work).
    if (from.steps[i].kind != to.steps[i].kind) return false;
    if (!MatchInto(from.steps[i].oid, to.steps[i].oid, &scratch)) return false;
    if (!MatchInto(from.steps[i].label, to.steps[i].label, &scratch)) {
      return false;
    }
  }
  const size_t d = from.steps.size();
  const bool to_continues = to.steps.size() > d;

  if (from.tail.is_set()) {
    // `{}`: the matched object must be set-valued in `to` as well.
    if (!to_continues && !to.tail.is_set()) return false;
    *subst = std::move(scratch);
    return true;
  }

  const Term& tail = from.tail.term();
  if (tail.is_atom() || tail.is_func()) {
    // A concrete value: `to` must end here with the identical term.
    if (to_continues || !to.tail.is_term()) return false;
    if (!MatchInto(tail, to.tail.term(), &scratch)) return false;
    *subst = std::move(scratch);
    return true;
  }

  // Tail variable: binds to `to`'s tail term, to `{}`, or — the set-mapping
  // case — to the remaining subpattern of `to`.
  if (const Term* bound = scratch.LookupTerm(tail)) {
    if (to_continues || !to.tail.is_term() || !(*bound == to.tail.term())) {
      return false;
    }
    *subst = std::move(scratch);
    return true;
  }
  if (const SetPattern* bound = scratch.LookupSet(tail)) {
    SetPattern expected;
    if (to_continues) {
      expected = RemainderSet(to, d);
    } else if (to.tail.is_set()) {
      expected = to.tail.set();
    } else {
      return false;
    }
    if (!(*bound == expected)) return false;
    *subst = std::move(scratch);
    return true;
  }
  bool ok;
  if (to_continues) {
    ok = scratch.BindSet(tail, RemainderSet(to, d));
  } else if (to.tail.is_term()) {
    ok = MatchInto(tail, to.tail.term(), &scratch);
  } else {
    ok = scratch.BindSet(tail, to.tail.set());
  }
  if (!ok) return false;
  *subst = std::move(scratch);
  return true;
}

struct BodyMappingLess {
  bool operator()(const BodyMapping& a, const BodyMapping& b) const {
    if (!(a.subst == b.subst)) return a.subst < b.subst;
    return a.target < b.target;
  }
};

}  // namespace

std::vector<BodyMapping> FindBodyMappings(const std::vector<Path>& from,
                                          const std::vector<Path>& to,
                                          const Substitution& seed,
                                          bool allow_unmapped) {
  std::vector<BodyMapping> out;
  std::set<BodyMapping, BodyMappingLess> dedup;
  // Depth-first product over target choices for each `from` path.
  struct Frame {
    size_t index;
    Substitution subst;
    std::vector<size_t> target;
  };
  std::vector<Frame> stack{{0, seed, {}}};
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    if (frame.index == from.size()) {
      BodyMapping m{std::move(frame.subst), std::move(frame.target)};
      if (allow_unmapped && !from.empty() &&
          std::all_of(m.target.begin(), m.target.end(), [](size_t t) {
            return t == BodyMapping::kUnmapped;
          })) {
        continue;  // the vacuous all-unmapped mapping carries no signal
      }
      if (dedup.insert(m).second) out.push_back(std::move(m));
      continue;
    }
    if (allow_unmapped) {
      Frame skip{frame.index + 1, frame.subst, frame.target};
      skip.target.push_back(BodyMapping::kUnmapped);
      stack.push_back(std::move(skip));
    }
    for (size_t j = 0; j < to.size(); ++j) {
      Substitution subst = frame.subst;
      if (!MapPathInto(from[frame.index], to[j], &subst)) continue;
      Frame next{frame.index + 1, std::move(subst), frame.target};
      next.target.push_back(j);
      stack.push_back(std::move(next));
    }
  }
  std::sort(out.begin(), out.end(), BodyMappingLess{});
  return out;
}

bool ExistsBodyMapping(const std::vector<Path>& from,
                       const std::vector<Path>& to,
                       const Substitution& seed) {
  // Depth-first with early exit on the first complete assignment.
  struct Frame {
    size_t index;
    Substitution subst;
  };
  std::vector<Frame> stack{{0, seed}};
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    if (frame.index == from.size()) return true;
    for (size_t j = 0; j < to.size(); ++j) {
      Substitution subst = frame.subst;
      if (!MapPathInto(from[frame.index], to[j], &subst)) continue;
      stack.push_back(Frame{frame.index + 1, std::move(subst)});
    }
  }
  return false;
}

Result<std::vector<BodyMapping>> FindMappings(const TslQuery& view,
                                              const TslQuery& query) {
  TSLRW_ASSIGN_OR_RETURN(std::vector<Path> from, BodyPaths(view));
  TSLRW_ASSIGN_OR_RETURN(std::vector<Path> to, BodyPaths(query));
  return FindBodyMappings(from, to);
}

}  // namespace tslrw
