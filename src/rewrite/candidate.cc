#include "rewrite/candidate.h"

#include "common/string_util.h"
#include "rewrite/mapping.h"

namespace tslrw {

Result<std::vector<CandidateAtom>> BuildCandidateAtoms(
    const TslQuery& chased_query, const std::vector<TslQuery>& chased_views,
    size_t* mappings_found, bool allow_partial_mappings) {
  std::vector<CandidateAtom> atoms;
  int view_index = 0;
  for (const TslQuery& original_view : chased_views) {
    TslQuery view = allow_partial_mappings
                        ? RenameVariablesApart(
                              original_view, StrCat("_pm", ++view_index))
                        : original_view;
    TSLRW_ASSIGN_OR_RETURN(std::vector<Path> from, BodyPaths(view));
    TSLRW_ASSIGN_OR_RETURN(std::vector<Path> to, BodyPaths(chased_query));
    std::vector<BodyMapping> mappings =
        FindBodyMappings(from, to, Substitution(), allow_partial_mappings);
    if (mappings_found != nullptr) *mappings_found += mappings.size();
    for (const BodyMapping& m : mappings) {
      CandidateAtom atom;
      atom.condition =
          Condition{m.subst.Apply(view.head), /*source=*/view.name};
      for (size_t t : m.target) {
        if (t != BodyMapping::kUnmapped) atom.covers.insert(t);
      }
      atom.is_view = true;
      atoms.push_back(std::move(atom));
    }
  }
  for (size_t i = 0; i < chased_query.body.size(); ++i) {
    CandidateAtom atom;
    atom.condition = chased_query.body[i];
    atom.covers = {i};
    atom.is_view = false;
    atoms.push_back(std::move(atom));
  }
  return atoms;
}

bool CandidateEnumerator::Admissible(
    const std::vector<size_t>& chosen) const {
  if (!cover_masks_.empty()) {
    uint64_t covered = 0;
    bool has_view = false;
    for (size_t i : chosen) {
      has_view = has_view || atoms_[i].is_view;
      if (options_.require_total && !atoms_[i].is_view) return false;
      covered |= cover_masks_[i];
    }
    if (!has_view) return false;  // a rewriting must use some view
    return !options_.use_cover_heuristic || covered == full_cover_mask_;
  }
  bool has_view = false;
  std::set<size_t> covered;
  for (size_t i : chosen) {
    has_view = has_view || atoms_[i].is_view;
    if (options_.require_total && !atoms_[i].is_view) return false;
    covered.insert(atoms_[i].covers.begin(), atoms_[i].covers.end());
  }
  if (!has_view) return false;  // a rewriting must use some view
  if (options_.use_cover_heuristic &&
      covered.size() != num_query_conditions_) {
    return false;
  }
  return true;
}

}  // namespace tslrw
