#include "rewrite/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "rewrite/compose.h"
#include "runtime/thread_pool.h"
#include "tsl/canonical.h"
#include "tsl/validate.h"

namespace tslrw {

namespace {

/// Candidates per worker task. Large enough that queue/lock/wakeup traffic
/// stays a rounding error next to the per-candidate chase + composition;
/// small enough that a search in the hundreds of candidates still spreads
/// across a pool. (Searches smaller than one batch lose nothing: their
/// wall clock is dominated by the first uncached equivalence test.)
constexpr size_t kBatchSize = 32;

/// How one candidate's verification ended; the stages mirror the decision
/// points of the sequential loop in rewriter.cc so that commit can replay
/// them in enumeration order. Keep the two in lockstep.
struct Slot {
  enum class Stage {
    kDominated,   // resolved at dispatch: a committed accepted set is a
                  // subset of this candidate's — commit re-proves it
    kUnsafe,      // CheckSafety failed: skipped, never tested
    kChaseUnsat,  // candidate chase unsatisfiable: skipped, never tested
    kChaseError,  // hard chase error: fails before candidates_tested
    kLateError,   // compose/equivalence error: fails after candidates_tested
    kVerdict,     // tested; `equivalent` holds the \S4 answer
  };
  Stage stage = Stage::kVerdict;
  bool equivalent = false;
  Status error;
  bool done = false;  // guarded by Pipeline::mu_
};
using SlotPtr = std::shared_ptr<Slot>;

/// One emitted candidate, held until its turn to commit. Candidates with
/// byte-identical bodies share one Slot (the work runs once) but keep their
/// own `candidate` — names embed the emission sequence number.
struct Pending {
  size_t seq = 0;  // candidates_generated at emission (1-based)
  std::shared_ptr<TslQuery> candidate;  // null when resolved at dispatch
  std::vector<size_t> chosen;           // sorted atom indices
  SlotPtr slot;
};

struct WorkItem {
  std::shared_ptr<const TslQuery> candidate;
  SlotPtr slot;
  std::vector<uint32_t> alpha_key;  // candidate-level memo key
};

/// FNV-1a over interned-id vectors; the memo tables are hash maps because
/// their keys share long common prefixes (α-isomorphic candidates differ
/// only near the end), which makes ordered-map probes degenerate into
/// repeated full-key comparisons.
struct U32VecHash {
  size_t operator()(const std::vector<uint32_t>& v) const {
    size_t h = 14695981039346656037ull;
    for (uint32_t x : v) {
      h ^= x;
      h *= 1099511628211ull;
    }
    return h;
  }
};

/// Whether some accepted set is a subset of \p chosen (both sorted
/// ascending — `chosen` by enumeration construction, accepted entries
/// because they are former `chosen`s).
bool Dominated(const std::vector<std::vector<size_t>>& accepted,
               const std::vector<size_t>& chosen) {
  for (const std::vector<size_t>& prior : accepted) {
    if (std::includes(chosen.begin(), chosen.end(), prior.begin(),
                      prior.end())) {
      return true;
    }
  }
  return false;
}

/// Memo keys are *cheap α-sound* fingerprints, not the full canonical form
/// (src/tsl/canonical): CanonicalizeQuery costs about as much as the
/// equivalence test it would save (it is graph canonicalization), which
/// would cancel the sharing win on the very workloads the memo targets.
/// Instead each rule is rendered in two separable parts per condition — a
/// variable-blind *shape* string and the *wiring*, the sequence of
/// variable indices in first-occurrence order over (head, shape-sorted
/// conditions). Equal keys imply the rules are α-isomorphic (the
/// occurrence numbering exhibits the bijection), so equal keys imply equal
/// verification outcomes — soundness. α-equivalent rules can still get
/// distinct keys (e.g. when two conditions share a shape and sort
/// ambiguously); such a miss merely costs one full verification.
///
/// The same idea is applied at two levels. The *candidate* memo keys the
/// whole verification outcome (chase-unsatisfiable or the \S4 verdict) on
/// the candidate body before any work runs: every candidate shares the one
/// query head, so α-isomorphic bodies verify identically, and a hit skips
/// chase, composition, and the equivalence test outright. Its per-atom key
/// material (shape, interned variable names) is precomputed once at
/// pipeline construction, making the per-candidate key a few integer
/// writes. The *composed rule set* memo (CheapRuleKey/RuleSetKey below)
/// catches candidates whose bodies differ structurally but compose to
/// α-isomorphic rule sets. Hard errors are never memoized at either level:
/// an error must re-run so it surfaces with exactly the bytes the
/// sequential path would have produced.
struct ShapeOut {
  std::string shape;               // text with every variable as `?<sort>`
  std::vector<const Term*> vars;   // variable occurrences, traversal order
};

void WalkTerm(const Term& t, ShapeOut* out) {
  switch (t.kind()) {
    case TermKind::kAtom:
      out->shape += 'a';
      out->shape += t.atom_name();
      out->shape += ';';
      return;
    case TermKind::kVariable:
      out->shape += '?';
      out->shape += static_cast<char>('0' + static_cast<int>(t.var_kind()));
      out->vars.push_back(&t);
      return;
    case TermKind::kFunction:
      out->shape += 'f';
      out->shape += t.functor();
      out->shape += '(';
      for (const Term& arg : t.args()) WalkTerm(arg, out);
      out->shape += ')';
      return;
  }
}

void WalkPattern(const ObjectPattern& p, ShapeOut* out) {
  out->shape += '<';
  out->shape += static_cast<char>('0' + static_cast<int>(p.step));
  WalkTerm(p.oid, out);
  WalkTerm(p.label, out);
  if (p.value.is_term()) {
    WalkTerm(p.value.term(), out);
  } else {
    out->shape += '{';
    for (const ObjectPattern& member : p.value.set()) {
      WalkPattern(member, out);
    }
    out->shape += '}';
  }
  out->shape += '>';
}

/// Appends \p v in decimal without allocating.
void AppendIndex(size_t v, std::string* out) {
  if (v < 10) {
    *out += static_cast<char>('0' + v);
    return;
  }
  char buf[20];
  size_t n = 0;
  for (; v > 0; v /= 10) buf[n++] = static_cast<char>('0' + v % 10);
  while (n > 0) *out += buf[--n];
}

/// The rule's fingerprint; excludes the rule *name* (candidate names embed
/// the emission sequence number) and is insensitive to body order. This
/// runs once per composed rule per uncached candidate, so it stays off
/// node-allocating containers: the first-occurrence index is a linear scan
/// (a rule has a couple dozen variable occurrences at most).
std::string CheapRuleKey(const TslQuery& rule) {
  std::vector<ShapeOut> conds(rule.body.size());
  std::vector<size_t> order(rule.body.size());
  size_t vars = 0;
  size_t shapes = 0;
  for (size_t i = 0; i < rule.body.size(); ++i) {
    conds[i].shape.reserve(96);
    conds[i].shape += '@';
    conds[i].shape += rule.body[i].source;
    conds[i].shape += ':';
    WalkPattern(rule.body[i].pattern, &conds[i]);
    order[i] = i;
    vars += conds[i].vars.size();
    shapes += conds[i].shape.size();
  }
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return conds[a].shape < conds[b].shape;
  });
  ShapeOut head;
  WalkPattern(rule.head, &head);

  std::vector<const std::string*> index;  // first-occurrence order
  index.reserve(vars + head.vars.size());
  std::string key;
  key.reserve(head.shape.size() + shapes + 5 * (vars + head.vars.size()) +
              2 * conds.size() + 2);
  key += head.shape;
  auto append_wiring = [&](const ShapeOut& part) {
    key += '#';
    for (const Term* var : part.vars) {
      const std::string& name = var->var_name();
      size_t at = 0;
      while (at < index.size() && *index[at] != name) ++at;
      if (at == index.size()) index.push_back(&name);
      AppendIndex(at, &key);
      key += ',';
    }
  };
  append_wiring(head);
  for (size_t i : order) {
    key += '|';
    key += conds[i].shape;
    append_wiring(conds[i]);
  }
  return key;
}

/// Order-insensitive key of a composed rule set: the sorted multiset of
/// per-rule fingerprints (rule variables are rule-scoped, so per-rule
/// keying is exact for the set).
std::string RuleSetKey(const TslRuleSet& rules) {
  std::vector<std::string> keys;
  keys.reserve(rules.rules.size());
  for (const TslQuery& rule : rules.rules) {
    keys.push_back(CheapRuleKey(rule));
  }
  std::sort(keys.begin(), keys.end());
  std::string out;
  for (const std::string& key : keys) {
    out += key;
    out += '\n';
  }
  return out;
}

class Pipeline {
 public:
  Pipeline(const TslQuery& chased_query,
           const std::vector<TslQuery>& chased_views,
           const std::vector<CandidateAtom>& atoms,
           const ChaseOptions& chase_options, const EquivalenceTester& tester,
           const RewriteOptions& options, size_t workers,
           RewriteResult* result)
      : views_(chased_views),
        chase_options_(chase_options),
        tester_(tester),
        options_(options),
        result_(result),
        head_(chased_query.head),
        name_prefix_(chased_query.name.empty() ? "rewriting"
                                               : chased_query.name),
        max_pending_(workers * kBatchSize * 4) {
    InternAtoms(atoms);
    contexts_.reserve(workers);
    for (size_t i = 0; i < workers; ++i) {
      contexts_.push_back(std::make_unique<Ctx>(tester));
      free_contexts_.push_back(i);
    }
    ThreadPool::Options pool;
    pool.threads = workers;
    // The producer's in-flight bound keeps the depth below this; the slack
    // absorbs partial batches. A full queue is still handled (Flush runs
    // the batch inline), it just should not be the steady state.
    pool.queue_capacity = 2 * max_pending_ + 16;
    // The pool lives for one search; small searches dispatch fewer batches
    // than there are workers, so start threads only as batches arrive.
    pool.lazy_spawn = true;
    pool_ = std::make_unique<ThreadPool>(pool);
  }

  /// The CandidateEnumerator callback; runs on the producing thread.
  /// Returns false to stop the enumeration (a hard error committed).
  bool OnCandidate(const std::vector<CandidateAtom>& atoms,
                   const std::vector<size_t>& chosen) {
    std::unique_lock<std::mutex> lock(mu_);
    if (failed_) return false;
    ++result_->candidates_generated;
    const size_t seq = result_->candidates_generated;
    CommitReady();
    if (failed_) return false;

    Pending p;
    p.seq = seq;
    // `chosen` is only consulted by the dominance checks; skip the copy
    // when pruning is off.
    if (options_.prune_dominated) p.chosen = chosen;

    if (options_.prune_dominated && Dominated(accepted_, p.chosen)) {
      // The accepted prefix only grows, so the authoritative commit-time
      // dominance check is guaranteed to discard this candidate too: skip
      // the verification work entirely.
      p.slot = std::make_shared<Slot>();
      p.slot->stage = Slot::Stage::kDominated;
      p.slot->done = true;
      pending_.push_back(std::move(p));
      return true;
    }

    auto candidate = std::make_shared<TslQuery>();
    candidate->name = StrCat(name_prefix_, "_rw", seq);
    candidate->head = head_;  // Lemma 5.4
    std::vector<uint32_t> body_key;
    body_key.reserve(chosen.size());
    for (size_t i : chosen) {
      candidate->body.push_back(atoms[i].condition);
      body_key.push_back(atom_info_[i].cond_id);
    }
    p.candidate = candidate;

    auto it = body_slots_.find(body_key);
    if (it != body_slots_.end()) {
      p.slot = it->second;  // identical body already in flight or finished
    } else if (!CheckSafety(*candidate).ok()) {
      p.slot = std::make_shared<Slot>();
      p.slot->stage = Slot::Stage::kUnsafe;
      p.slot->done = true;
      body_slots_.emplace(std::move(body_key), p.slot);
    } else {
      std::vector<uint32_t> alpha_key = AlphaKey(chosen);
      p.slot = std::make_shared<Slot>();
      if (LookupCandidateMemo(alpha_key, p.slot.get())) {
        p.slot->done = true;  // α-isomorphic candidate already verified
      } else {
        batch_.push_back(WorkItem{candidate, p.slot, std::move(alpha_key)});
      }
      body_slots_.emplace(std::move(body_key), p.slot);
      if (batch_.size() >= kBatchSize) Flush(lock);
    }
    pending_.push_back(std::move(p));

    // Bounded in-flight window: block — committing whatever lands — rather
    // than let enumeration outrun the commit frontier without limit.
    if (pending_.size() >= max_pending_) Flush(lock);
    while (!failed_ && pending_.size() >= max_pending_) {
      CommitReady();
      if (failed_ || pending_.size() < max_pending_) break;
      slot_ready_.wait(lock);
    }
    return !failed_;
  }

  /// Flushes stragglers, commits everything, joins the pool, and folds the
  /// shared-work counters into the result. Returns the first in-order hard
  /// error, or OK.
  Status Finish() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      Flush(lock);
      while (!failed_ && !pending_.empty()) {
        CommitReady();
        if (failed_ || pending_.empty()) break;
        if (!pending_.front().slot->done) slot_ready_.wait(lock);
      }
    }
    // Drains work items stranded behind a hard error; their outcomes are
    // never committed.
    pool_->Shutdown();
    result_->chase_cache_hits += chase_hits_.load();
    result_->equiv_cache_hits += equiv_hits_.load();
    return failed_ ? failure_ : Status::OK();
  }

 private:
  /// Per-worker state: a tester clone (the issue of sharing one is moot —
  /// EquivalentTo is const — but clones make the isolation obvious and keep
  /// any future mutable caches in EquivalenceTester safe) and the
  /// composition memo, which is mutable and therefore thread-local.
  struct Ctx {
    explicit Ctx(const EquivalenceTester& t) : tester(t) {}
    EquivalenceTester tester;
    ComposeCache compose;
  };

  /// Per-atom key material interned once at construction so the
  /// per-candidate keys are integer appends, not renders.
  struct AtomKeyInfo {
    uint32_t cond_id = 0;     // exact-identity id of the rendered condition
    uint32_t shape_id = 0;    // id of the variable-blind shape (with source)
    uint32_t shape_rank = 0;  // rank of the shape string under `<`
    std::vector<uint32_t> vars;  // interned variable names, traversal order
  };

  /// A completed, error-free verification outcome, shared across
  /// α-isomorphic candidates.
  struct CandidateOutcome {
    bool unsat = false;
    bool equivalent = false;
  };

  void InternAtoms(const std::vector<CandidateAtom>& atoms) {
    std::map<std::string, uint32_t> cond_ids;
    std::map<std::string, uint32_t> shape_ids;
    std::map<std::string, uint32_t> var_ids;
    auto intern = [](std::map<std::string, uint32_t>& table, std::string s) {
      return table.emplace(std::move(s), static_cast<uint32_t>(table.size()))
          .first->second;
    };
    atom_info_.reserve(atoms.size());
    for (const CandidateAtom& atom : atoms) {
      AtomKeyInfo info;
      info.cond_id = intern(cond_ids, atom.condition.ToString());
      ShapeOut s;
      s.shape += '@';
      s.shape += atom.condition.source;
      s.shape += ':';
      WalkPattern(atom.condition.pattern, &s);
      info.vars.reserve(s.vars.size());
      for (const Term* var : s.vars) {
        info.vars.push_back(intern(var_ids, var->var_name()));
      }
      info.shape_id = intern(shape_ids, std::move(s.shape));
      atom_info_.push_back(std::move(info));
    }
    ShapeOut head_shape;
    WalkPattern(head_, &head_shape);
    head_vars_.reserve(head_shape.vars.size());
    for (const Term* var : head_shape.vars) {
      head_vars_.push_back(intern(var_ids, var->var_name()));
    }
    // std::map iterates in key order, which is exactly the shape rank.
    shape_rank_.resize(shape_ids.size());
    uint32_t rank = 0;
    for (const auto& [shape, id] : shape_ids) shape_rank_[id] = rank++;
    for (AtomKeyInfo& info : atom_info_) {
      info.shape_rank = shape_rank_[info.shape_id];
    }
    var_seen_.assign(var_ids.size(), 0);
    var_index_.assign(var_ids.size(), 0);
  }

  /// The candidate-level memo key: body size, shape ids in shape-sorted
  /// order (ties keep enumeration order, mirroring CheapRuleKey's stable
  /// sort), then variable wiring — first-occurrence indices over (head,
  /// sorted conditions). Equal keys exhibit an α-isomorphism that fixes
  /// the (shared) head, so equal keys imply equal chase satisfiability and
  /// equal \S4 verdicts. Runs on the single producer thread only — the
  /// scratch members are not shared.
  std::vector<uint32_t> AlphaKey(const std::vector<size_t>& chosen) {
    order_.assign(chosen.begin(), chosen.end());
    std::stable_sort(order_.begin(), order_.end(), [this](size_t a, size_t b) {
      return atom_info_[a].shape_rank < atom_info_[b].shape_rank;
    });
    std::vector<uint32_t> key;
    key.reserve(1 + chosen.size() * 4);
    key.push_back(static_cast<uint32_t>(chosen.size()));
    for (size_t i : order_) key.push_back(atom_info_[i].shape_id);
    ++epoch_;
    uint32_t next = 0;
    auto wire = [&](const std::vector<uint32_t>& vars) {
      for (uint32_t v : vars) {
        if (var_seen_[v] != epoch_) {
          var_seen_[v] = epoch_;
          var_index_[v] = next++;
        }
        key.push_back(var_index_[v]);
      }
    };
    wire(head_vars_);
    for (size_t i : order_) wire(atom_info_[i].vars);
    return key;
  }

  /// On a candidate-memo hit, writes the memoized stage into \p slot (not
  /// `done` — dispatch and worker paths finalize differently) and counts
  /// the skipped work. Takes memo_mu_; see the lock-order note on memo_mu_.
  bool LookupCandidateMemo(const std::vector<uint32_t>& alpha_key,
                           Slot* slot) {
    std::lock_guard<std::mutex> lock(memo_mu_);
    auto it = candidate_memo_.find(alpha_key);
    if (it == candidate_memo_.end()) return false;
    if (it->second.unsat) {
      slot->stage = Slot::Stage::kChaseUnsat;
      chase_hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      slot->stage = Slot::Stage::kVerdict;
      slot->equivalent = it->second.equivalent;
      equiv_hits_.fetch_add(1, std::memory_order_relaxed);
    }
    return true;
  }

  void StoreCandidateMemo(const std::vector<uint32_t>& alpha_key,
                          CandidateOutcome outcome) {
    std::lock_guard<std::mutex> lock(memo_mu_);
    candidate_memo_.emplace(alpha_key, outcome);
  }

  /// Commits every ready in-order outcome. Mirrors the sequential loop
  /// body in rewriter.cc, decision for decision. Caller holds mu_.
  void CommitReady() {
    while (!failed_ && !pending_.empty() && pending_.front().slot->done) {
      Pending p = std::move(pending_.front());
      pending_.pop_front();
      if (options_.prune_dominated && Dominated(accepted_, p.chosen)) {
        continue;  // discarded before any of its outcome is examined
      }
      const Slot& slot = *p.slot;
      switch (slot.stage) {
        case Slot::Stage::kDominated:
          // Unreachable: dispatch-time dominance implies commit-time
          // dominance (the accepted prefix only grows). Skipping is the
          // right answer regardless.
          break;
        case Slot::Stage::kUnsafe:
        case Slot::Stage::kChaseUnsat:
          break;
        case Slot::Stage::kChaseError:
          failure_ = slot.error;
          failed_ = true;
          break;
        case Slot::Stage::kLateError:
          ++result_->candidates_tested;
          failure_ = slot.error;
          failed_ = true;
          break;
        case Slot::Stage::kVerdict:
          ++result_->candidates_tested;
          if (slot.equivalent) {
            if (options_.prune_dominated) {
              accepted_.push_back(std::move(p.chosen));
            }
            result_->rewritings.push_back(std::move(*p.candidate));
          }
          break;
      }
    }
  }

  /// Hands the current batch to the pool. Caller holds mu_ (released only
  /// around an inline fallback run).
  void Flush(std::unique_lock<std::mutex>& lock) {
    if (batch_.empty()) return;
    auto batch = std::make_shared<std::vector<WorkItem>>(std::move(batch_));
    batch_.clear();
    ++result_->batches_dispatched;
    Status submitted = pool_->TrySubmit([this, batch] { RunBatch(*batch); });
    if (!submitted.ok()) {
      // Pool saturated: verify inline. Outcomes are outcomes wherever they
      // are computed; commit order is unaffected.
      lock.unlock();
      RunBatch(*batch);
      lock.lock();
    }
  }

  void RunBatch(std::vector<WorkItem>& batch) {
    size_t ctx_index = SIZE_MAX;
    {
      std::lock_guard<std::mutex> lock(ctx_mu_);
      if (!free_contexts_.empty()) {
        ctx_index = free_contexts_.back();
        free_contexts_.pop_back();
      }
    }
    // Only an inline-fallback run can find every context taken; it clones
    // a fresh one rather than sharing.
    std::unique_ptr<Ctx> local;
    if (ctx_index == SIZE_MAX) local = std::make_unique<Ctx>(tester_);
    Ctx& ctx = local ? *local : *contexts_[ctx_index];
    // Publish the whole batch under one lock with one wakeup — per-item
    // lock-and-notify traffic would rival a memo-hit verification itself.
    // The producer (the only slot_ready_ waiter) has batches of slack in
    // its in-flight window, so coarser signaling does not stall it.
    std::vector<Slot> outs;
    outs.reserve(batch.size());
    for (WorkItem& item : batch) {
      outs.push_back(Verify(*item.candidate, item.alpha_key, ctx));
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t i = 0; i < batch.size(); ++i) {
        outs[i].done = true;
        *batch[i].slot = std::move(outs[i]);
      }
    }
    slot_ready_.notify_one();
    if (ctx_index != SIZE_MAX) {
      std::lock_guard<std::mutex> lock(ctx_mu_);
      free_contexts_.push_back(ctx_index);
    }
  }

  /// Chase + compose + equivalence for one candidate, through the memos.
  /// Hard-error Statuses are never cached: an error must surface with the
  /// exact message the sequential path would have produced for that seq.
  Slot Verify(const TslQuery& candidate,
              const std::vector<uint32_t>& alpha_key, Ctx& ctx) {
    Slot out;
    // The candidate memo first: an α-isomorphic candidate may have
    // finished (even earlier in this very batch) since this one was
    // dispatched, and a hit skips every step below.
    if (LookupCandidateMemo(alpha_key, &out)) return out;
    // Step 1C through the chase memo. The key is the candidate body's
    // canonical fingerprint (src/tsl/canonical) — α-invariant, like the
    // chase outcome (success/unsat and the result modulo renaming); the
    // stored query keeps the *first* computer's name, which composition
    // carries into rule names — the verdict, the only consumer, is
    // name-blind. The memo engages only under structural constraints:
    // without them the chase is a cheap normalization pass that costs less
    // than its canonical fingerprint, and identical bodies were already
    // deduped producer-side.
    const bool use_chase_memo = chase_options_.constraints != nullptr;
    std::shared_ptr<const TslQuery> chased;
    bool chase_unsat = false;
    bool have_entry = false;
    std::string candidate_key;
    if (use_chase_memo) {
      candidate_key = CanonicalizeQuery(candidate).key;
      std::lock_guard<std::mutex> lock(memo_mu_);
      auto it = chase_memo_.find(candidate_key);
      if (it != chase_memo_.end()) {
        chase_hits_.fetch_add(1, std::memory_order_relaxed);
        chase_unsat = it->second.unsat;
        chased = it->second.chased;
        have_entry = true;
      }
    }
    if (!have_entry) {
      Result<TslQuery> fresh = ChaseQuery(candidate, chase_options_);
      if (fresh.ok()) {
        chased = std::make_shared<const TslQuery>(std::move(fresh).value());
      } else if (fresh.status().IsUnsatisfiable()) {
        chase_unsat = true;
      } else {
        out.stage = Slot::Stage::kChaseError;
        out.error = fresh.status();
        return out;
      }
      if (use_chase_memo) {
        std::lock_guard<std::mutex> lock(memo_mu_);
        chase_memo_.emplace(std::move(candidate_key),
                            ChaseEntry{chase_unsat, chased});
      }
    }
    if (chase_unsat) {
      out.stage = Slot::Stage::kChaseUnsat;
      StoreCandidateMemo(alpha_key, CandidateOutcome{true, false});
      return out;
    }

    // Step 2 through the per-worker compose cache and the verdict memo.
    Result<TslRuleSet> composed =
        ComposeWithViews(*chased, views_, &ctx.compose);
    if (!composed.ok()) {
      out.stage = Slot::Stage::kLateError;
      out.error = composed.status();
      return out;
    }
    std::string verdict_key = RuleSetKey(*composed);
    {
      std::lock_guard<std::mutex> lock(memo_mu_);
      auto it = verdict_memo_.find(verdict_key);
      if (it != verdict_memo_.end()) {
        equiv_hits_.fetch_add(1, std::memory_order_relaxed);
        out.equivalent = it->second;
        candidate_memo_.emplace(alpha_key,
                                CandidateOutcome{false, out.equivalent});
        return out;
      }
    }
    Result<bool> equivalent = ctx.tester.EquivalentTo(*composed);
    if (!equivalent.ok()) {
      out.stage = Slot::Stage::kLateError;
      out.error = equivalent.status();
      return out;
    }
    out.equivalent = *equivalent;
    {
      std::lock_guard<std::mutex> lock(memo_mu_);
      verdict_memo_.emplace(std::move(verdict_key), *equivalent);
      candidate_memo_.emplace(alpha_key, CandidateOutcome{false, *equivalent});
    }
    return out;
  }

  struct ChaseEntry {
    bool unsat = false;
    std::shared_ptr<const TslQuery> chased;  // null when unsat
  };

  // Fixed inputs.
  const std::vector<TslQuery>& views_;
  const ChaseOptions& chase_options_;
  const EquivalenceTester& tester_;
  const RewriteOptions& options_;
  RewriteResult* result_;
  const ObjectPattern head_;
  const std::string name_prefix_;
  const size_t max_pending_;

  // Producer/commit state; guarded by mu_ (slot_ready_ signals new done
  // slots). `result_` and `accepted_` are written by the producer thread
  // only, under mu_.
  std::mutex mu_;
  std::condition_variable slot_ready_;
  std::deque<Pending> pending_;
  std::vector<WorkItem> batch_;
  std::unordered_map<std::vector<uint32_t>, SlotPtr, U32VecHash> body_slots_;
  std::vector<std::vector<size_t>> accepted_;
  bool failed_ = false;
  Status failure_;

  // Interned per-atom key material; written at construction, then
  // read-only.
  std::vector<AtomKeyInfo> atom_info_;
  std::vector<uint32_t> head_vars_;
  std::vector<uint32_t> shape_rank_;
  // Producer-only AlphaKey scratch (single producer thread).
  std::vector<size_t> order_;
  std::vector<uint32_t> var_seen_;
  std::vector<uint32_t> var_index_;
  uint32_t epoch_ = 0;

  // Shared memos; guarded by memo_mu_. Lock order: the producer takes
  // memo_mu_ while holding mu_ (dispatch-time candidate-memo probe);
  // workers take each alone — never memo_mu_ then mu_.
  std::mutex memo_mu_;
  std::unordered_map<std::string, ChaseEntry> chase_memo_;
  std::unordered_map<std::vector<uint32_t>, CandidateOutcome, U32VecHash>
      candidate_memo_;
  std::unordered_map<std::string, bool> verdict_memo_;
  std::atomic<size_t> chase_hits_{0};
  std::atomic<size_t> equiv_hits_{0};

  // Worker contexts, handed out per RunBatch; guarded by ctx_mu_.
  std::mutex ctx_mu_;
  std::vector<std::unique_ptr<Ctx>> contexts_;
  std::vector<size_t> free_contexts_;

  std::unique_ptr<ThreadPool> pool_;  // last: joins before members die
};

}  // namespace

Status VerifyCandidatesInParallel(const TslQuery& chased_query,
                                  const std::vector<TslQuery>& chased_views,
                                  const ChaseOptions& chase_options,
                                  const EquivalenceTester& tester,
                                  const CandidateEnumerator& enumerator,
                                  const RewriteOptions& options,
                                  size_t workers, RewriteResult* result,
                                  bool* complete) {
  Pipeline pipeline(chased_query, chased_views, enumerator.atoms(),
                    chase_options, tester, options, workers, result);
  *complete = enumerator.Enumerate([&](const std::vector<size_t>& chosen) {
    return pipeline.OnCandidate(enumerator.atoms(), chosen);
  });
  return pipeline.Finish();
}

}  // namespace tslrw
