#ifndef TSLRW_REWRITE_REWRITER_H_
#define TSLRW_REWRITE_REWRITER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "constraints/inference.h"
#include "rewrite/chase.h"
#include "tsl/ast.h"

namespace tslrw {

class MetricRegistry;
class Tracer;
class ViewSetIndex;

/// \brief Knobs for the \S3.4 rewriting algorithm.
struct RewriteOptions {
  /// Structural constraints (DTD-derived) used for label inference and the
  /// labeled-FD chase on the query, the views, and the candidates (\S3.3).
  const StructuralConstraints* constraints = nullptr;

  /// Optional precompiled index over the view set (src/catalog, attached
  /// through Mediator::AttachCatalogIndex after validation; not owned).
  /// When the index recognizes `views` as its compiled catalog,
  /// RewriteQuery reuses the offline chase outcomes and enumerates
  /// candidates only over views whose structural signature admits a
  /// containment mapping into the query — the result stays byte-identical
  /// to the full scan (see docs/CATALOG.md). When it does not (live-view
  /// subsets during failover replans, a stale index), the full scan runs.
  const ViewSetIndex* view_index = nullptr;

  /// The \S3.4 heuristic: only construct candidates whose view
  /// instantiations and query conditions together "cover" all conditions
  /// of the query body. Sound and completeness-preserving; typically
  /// shrinks the candidate space by orders of magnitude (see
  /// bench_rewrite's ablation).
  bool use_cover_heuristic = true;

  /// Only emit *total* rewritings — every body condition refers to a view
  /// (\S1: sources behind limited interfaces can only be reached through
  /// their capability views).
  bool require_total = false;

  /// Keep only rewritings that are minimal with respect to their condition
  /// sets: a rewriting is dropped when an accepted one uses a strict subset
  /// of its conditions. Matches the paper's "Results" note: a pruned
  /// rewriting is represented by a trivial sibling that is at least as
  /// efficient under any reasonable cost model.
  bool prune_dominated = true;

  /// Hard cap on candidates examined (the space is exponential, \S5.1);
  /// when hit, RewriteResult::truncated is set.
  size_t max_candidates = 1000000;

  /// Cooperative budget hook, polled between candidates: returning true
  /// stops the enumeration early with `truncated` set. The mediator wires
  /// this to its per-query deadline on the virtual clock, so a search never
  /// outlives the answer it was planning.
  std::function<bool()> should_stop = nullptr;

  /// Fail with ResourceExhausted instead of returning a silently shortened
  /// result when the search is cut off (max_candidates or should_stop).
  /// For callers that must distinguish "no rewriting exists" from "none was
  /// found within budget".
  bool strict_limits = false;

  /// Worker threads for candidate verification (chase + compose + \S4
  /// equivalence test). `0` means hardware concurrency; `1` is the exact
  /// legacy sequential path (no worker pool, no memo caches). Any resolved
  /// value > 1 runs the parallel pipeline of docs/PARALLELISM.md:
  /// enumeration stays on the calling thread, verification fans out over a
  /// worker pool with per-candidate memoization, and results commit in
  /// enumeration order — rewritings, legacy counters, truncation flag, and
  /// error statuses are byte-identical to `parallelism = 1`.
  size_t parallelism = 0;

  /// Optional span tree for this call (docs/OBSERVABILITY.md). Spans are
  /// opened only on the calling thread — the deterministic control path —
  /// and annotated with replayed counters, so for a fixed input the trace
  /// is byte-identical at any `parallelism`. Null disables tracing.
  Tracer* tracer = nullptr;

  /// Optional metric sink. Unlike the trace, metrics also absorb the
  /// scheduling-dependent diagnostics (memo hit rates, wall-clock phase
  /// timings), so they are *not* covered by the byte-identity guarantee.
  /// Null disables metrics.
  MetricRegistry* metrics = nullptr;
};

/// \brief Output of the rewriting algorithm, including the counters the
/// complexity benchmarks report.
struct RewriteResult {
  /// Rewriting queries: each refers to at least one view and is equivalent
  /// to the input query (verified by composition + the \S4 test). Heads are
  /// identical to the query head (Lemma 5.4).
  std::vector<TslQuery> rewritings;

  /// Diagnostics.
  size_t mappings_found = 0;
  size_t candidates_generated = 0;
  size_t candidates_tested = 0;
  bool truncated = false;

  /// Shared-work diagnostics from the parallel verification pipeline; all
  /// zero on the `parallelism = 1` path. Unlike the counters above these
  /// depend on worker scheduling (two racing workers may both miss a memo),
  /// so they are reported, not replayed, by the determinism guarantee.
  ///
  /// Candidates whose chase outcome was answered by a memo: either the
  /// candidate-level α-memo replayed a chase-unsatisfiable outcome, or —
  /// under structural constraints — the chase memo keyed on the candidate
  /// body's canonical form (src/tsl/canonical) supplied the chased query.
  /// The canonical chase memo engages only when constraints are present:
  /// without them the chase is a cheap normalization pass that costs less
  /// than its canonical fingerprint.
  size_t chase_cache_hits = 0;
  /// Candidates whose \S4 verdict was answered by a memo — the
  /// candidate-level memo keyed on a cheap α-sound fingerprint of the
  /// candidate body (a hit skips chase, composition, and the test), or the
  /// memo keyed on the fingerprint of the composed rule set. Equal keys
  /// imply equal verdicts; see docs/PARALLELISM.md.
  size_t equiv_cache_hits = 0;
  /// Work batches handed to the worker pool.
  size_t batches_dispatched = 0;
  /// Wall-clock microseconds spent verifying candidates (both paths).
  uint64_t verify_wall_ticks = 0;

  /// Dependency-footprint facts for the maintenance layer (src/maint; see
  /// docs/SERVING.md "Incremental maintenance"). `views_touched` names every
  /// view that contributed at least one candidate atom — i.e. whose chased
  /// body admits a containment mapping into the chased query. It is a
  /// superset of the views referenced by `rewritings` (dominance pruning and
  /// truncation drop candidates, never atoms), which is exactly what makes
  /// it a sound footprint: a view outside this set cannot change the atom
  /// list, hence cannot change the search. Deterministic at any parallelism.
  std::set<std::string> views_touched;
  /// Stable keys (chase.h) of the constraint rules that fired while chasing
  /// the *inputs* (query and views). Candidate-chase firings are excluded —
  /// they are scheduling-dependent under the parallel pipeline — so this is
  /// observability data, not a sound constraint footprint; the maintenance
  /// layer flushes on any constraints delta regardless.
  std::set<std::string> fired_constraints;
  /// The chased input query (normal form, constraints applied). The
  /// maintenance layer probes it when a view is *added*: if the new view's
  /// chased body admits no containment mapping into this query, the cached
  /// plan set is provably unchanged. Empty when `query_unsatisfiable`.
  TslQuery chased_query;
  /// True when the chase proved the query unsatisfiable (the empty result
  /// holds for every view set; only a constraints change can alter it).
  bool query_unsatisfiable = false;
};

/// \brief The complete rewriting algorithm of \S3.4.
///
/// Pipeline: convert the query and views to normal form, apply label
/// inference and the chase; discover all containment mappings from each
/// view body into the query body (Step 1A); assemble candidate bodies from
/// instantiated view heads and original query conditions (Step 1B), chase
/// each candidate (Step 1C); then verify each candidate by composing it
/// with the views and testing equivalence with the query (Step 2). Sound
/// and complete for TSL (Theorem 5.5) in the absence of arbitrary FDs.
///
/// The query is rejected (IllFormedQuery) if unsafe or otherwise ill
/// formed; an Unsatisfiable query yields an empty result.
Result<RewriteResult> RewriteQuery(const TslQuery& query,
                                   const std::vector<TslQuery>& views,
                                   const RewriteOptions& options = {});

/// \brief The \S3.1 special case: a single-path-condition query against one
/// view. Returns at most one rewriting (there is at most one mapping).
/// Fails with InvalidArgument if the query body has more than one path.
Result<RewriteResult> RewriteSinglePath(const TslQuery& query,
                                        const TslQuery& view,
                                        const RewriteOptions& options = {});

}  // namespace tslrw

#endif  // TSLRW_REWRITE_REWRITER_H_
