#ifndef TSLRW_REWRITE_REWRITER_H_
#define TSLRW_REWRITE_REWRITER_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/result.h"
#include "constraints/inference.h"
#include "rewrite/chase.h"
#include "tsl/ast.h"

namespace tslrw {

/// \brief Knobs for the \S3.4 rewriting algorithm.
struct RewriteOptions {
  /// Structural constraints (DTD-derived) used for label inference and the
  /// labeled-FD chase on the query, the views, and the candidates (\S3.3).
  const StructuralConstraints* constraints = nullptr;

  /// The \S3.4 heuristic: only construct candidates whose view
  /// instantiations and query conditions together "cover" all conditions
  /// of the query body. Sound and completeness-preserving; typically
  /// shrinks the candidate space by orders of magnitude (see
  /// bench_rewrite's ablation).
  bool use_cover_heuristic = true;

  /// Only emit *total* rewritings — every body condition refers to a view
  /// (\S1: sources behind limited interfaces can only be reached through
  /// their capability views).
  bool require_total = false;

  /// Keep only rewritings that are minimal with respect to their condition
  /// sets: a rewriting is dropped when an accepted one uses a strict subset
  /// of its conditions. Matches the paper's "Results" note: a pruned
  /// rewriting is represented by a trivial sibling that is at least as
  /// efficient under any reasonable cost model.
  bool prune_dominated = true;

  /// Hard cap on candidates examined (the space is exponential, \S5.1);
  /// when hit, RewriteResult::truncated is set.
  size_t max_candidates = 1000000;

  /// Cooperative budget hook, polled between candidates: returning true
  /// stops the enumeration early with `truncated` set. The mediator wires
  /// this to its per-query deadline on the virtual clock, so a search never
  /// outlives the answer it was planning.
  std::function<bool()> should_stop = nullptr;

  /// Fail with ResourceExhausted instead of returning a silently shortened
  /// result when the search is cut off (max_candidates or should_stop).
  /// For callers that must distinguish "no rewriting exists" from "none was
  /// found within budget".
  bool strict_limits = false;
};

/// \brief Output of the rewriting algorithm, including the counters the
/// complexity benchmarks report.
struct RewriteResult {
  /// Rewriting queries: each refers to at least one view and is equivalent
  /// to the input query (verified by composition + the \S4 test). Heads are
  /// identical to the query head (Lemma 5.4).
  std::vector<TslQuery> rewritings;

  /// Diagnostics.
  size_t mappings_found = 0;
  size_t candidates_generated = 0;
  size_t candidates_tested = 0;
  bool truncated = false;
};

/// \brief The complete rewriting algorithm of \S3.4.
///
/// Pipeline: convert the query and views to normal form, apply label
/// inference and the chase; discover all containment mappings from each
/// view body into the query body (Step 1A); assemble candidate bodies from
/// instantiated view heads and original query conditions (Step 1B), chase
/// each candidate (Step 1C); then verify each candidate by composing it
/// with the views and testing equivalence with the query (Step 2). Sound
/// and complete for TSL (Theorem 5.5) in the absence of arbitrary FDs.
///
/// The query is rejected (IllFormedQuery) if unsafe or otherwise ill
/// formed; an Unsatisfiable query yields an empty result.
Result<RewriteResult> RewriteQuery(const TslQuery& query,
                                   const std::vector<TslQuery>& views,
                                   const RewriteOptions& options = {});

/// \brief The \S3.1 special case: a single-path-condition query against one
/// view. Returns at most one rewriting (there is at most one mapping).
/// Fails with InvalidArgument if the query body has more than one path.
Result<RewriteResult> RewriteSinglePath(const TslQuery& query,
                                        const TslQuery& view,
                                        const RewriteOptions& options = {});

}  // namespace tslrw

#endif  // TSLRW_REWRITE_REWRITER_H_
