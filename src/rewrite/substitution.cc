#include "rewrite/substitution.h"

#include "common/string_util.h"

namespace tslrw {

bool Substitution::BindTerm(const Term& var, const Term& value) {
  if (set_bindings_.count(var) > 0) return false;
  return terms_.Bind(var, value);
}

bool Substitution::BindSet(const Term& var, SetPattern members) {
  if (terms_.Lookup(var) != nullptr) return false;
  std::set<Term> pattern_vars;
  for (const ObjectPattern& m : members) m.CollectVariables(&pattern_vars);
  if (pattern_vars.count(var) > 0) return false;  // occurs check
  auto it = set_bindings_.find(var);
  if (it != set_bindings_.end()) return it->second == members;
  set_bindings_.emplace(var, std::move(members));
  return true;
}

bool Substitution::UnifyTerms(const Term& a, const Term& b) {
  std::set<Term> vars;
  a.CollectVariables(&vars);
  b.CollectVariables(&vars);
  for (const Term& v : vars) {
    if (set_bindings_.count(v) > 0) return false;
  }
  return Unify(a, b, &terms_);
}

bool Substitution::IsBound(const Term& var) const {
  return terms_.Lookup(var) != nullptr || set_bindings_.count(var) > 0;
}

const Term* Substitution::LookupTerm(const Term& var) const {
  return terms_.Lookup(var);
}

const SetPattern* Substitution::LookupSet(const Term& var) const {
  auto it = set_bindings_.find(var);
  return it == set_bindings_.end() ? nullptr : &it->second;
}

ObjectPattern Substitution::Apply(const ObjectPattern& pattern) const {
  ObjectPattern out;
  out.oid = terms_.Apply(pattern.oid);
  out.label = terms_.Apply(pattern.label);
  out.step = pattern.step;
  out.span = pattern.span;
  if (pattern.value.is_term()) {
    const Term& vt = pattern.value.term();
    if (const SetPattern* set = vt.is_var() ? LookupSet(vt) : nullptr) {
      // Substitute recursively inside the bound pattern; the per-binding
      // occurs check keeps this well-founded.
      SetPattern members;
      members.reserve(set->size());
      for (const ObjectPattern& m : *set) members.push_back(Apply(m));
      out.value = PatternValue::FromSet(std::move(members));
    } else {
      out.value = PatternValue::FromTerm(terms_.Apply(vt));
    }
  } else {
    SetPattern members;
    members.reserve(pattern.value.set().size());
    for (const ObjectPattern& m : pattern.value.set()) {
      members.push_back(Apply(m));
    }
    out.value = PatternValue::FromSet(std::move(members));
  }
  return out;
}

Condition Substitution::Apply(const Condition& condition) const {
  return Condition{Apply(condition.pattern), condition.source};
}

TslQuery Substitution::Apply(const TslQuery& query) const {
  TslQuery out;
  out.name = query.name;
  out.span = query.span;
  out.head = Apply(query.head);
  out.body.reserve(query.body.size());
  for (const Condition& c : query.body) out.body.push_back(Apply(c));
  return out;
}

std::string Substitution::ToString() const {
  std::vector<std::string> parts;
  for (const auto& [var, value] : terms_.bindings()) {
    parts.push_back(StrCat(var.ToString(), " -> ", value.ToString()));
  }
  for (const auto& [var, set] : set_bindings_) {
    parts.push_back(StrCat(var.ToString(), " -> ", tslrw::ToString(set)));
  }
  return StrCat("[", Join(parts, ", "), "]");
}

}  // namespace tslrw
