#include "rewrite/contained.h"

#include "common/string_util.h"
#include "equiv/equivalence.h"
#include "rewrite/candidate.h"
#include "rewrite/compose.h"
#include "tsl/validate.h"

namespace tslrw {

Result<ContainedRewritingResult> FindMaximallyContainedRewriting(
    const TslQuery& query, const std::vector<TslQuery>& views,
    const RewriteOptions& options) {
  TSLRW_RETURN_NOT_OK(ValidateQuery(query));
  if (UsesRegexSteps(query)) {
    return Status::IllFormedQuery(
        "rewriting queries with regular path expressions (l+, **) is the "
        "paper's future work (\\S7)");
  }
  for (const TslQuery& view : views) {
    if (UsesRegexSteps(view)) {
      return Status::IllFormedQuery(
          StrCat("view ", view.name, " uses regular path expressions"));
    }
  }
  ChaseOptions chase_options;
  chase_options.constraints = options.constraints;
  for (const TslQuery& view : views) {
    chase_options.constraint_exempt_sources.insert(view.name);
  }

  ContainedRewritingResult result;
  Result<TslQuery> chased_query = ChaseQuery(query, chase_options);
  if (!chased_query.ok()) {
    if (chased_query.status().IsUnsatisfiable()) {
      // The query returns nothing; the empty union is equivalent.
      result.equivalent = true;
      return result;
    }
    return chased_query.status();
  }
  const TslQuery q = std::move(chased_query).value();

  std::vector<TslQuery> chased_views;
  for (const TslQuery& view : views) {
    TSLRW_RETURN_NOT_OK(ValidateQuery(view));
    if (view.name.empty()) {
      return Status::InvalidArgument("views must be named");
    }
    Result<TslQuery> cv = ChaseQuery(view, chase_options);
    if (!cv.ok()) {
      if (cv.status().IsUnsatisfiable()) continue;
      return cv.status();
    }
    chased_views.push_back(std::move(cv).value());
  }

  TSLRW_ASSIGN_OR_RETURN(
      std::vector<CandidateAtom> atoms,
      BuildCandidateAtoms(q, chased_views, nullptr,
                          /*allow_partial_mappings=*/true));

  // Containment does not need full query coverage: enumerate without the
  // cover heuristic, honoring only totality.
  RewriteOptions enum_options = options;
  enum_options.use_cover_heuristic = false;
  enum_options.prune_dominated = false;

  TSLRW_ASSIGN_OR_RETURN(
      EquivalenceTester tester,
      EquivalenceTester::Make(TslRuleSet::Single(q), chase_options));
  struct Accepted {
    TslQuery rule;         // over the views (+ residual conditions)
    TslRuleSet composed;   // its expansion over base sources
  };
  std::vector<Accepted> accepted;
  Status failure;
  CandidateEnumerator enumerator(std::move(atoms), q.body.size(),
                                 enum_options);
  size_t counter = 0;
  bool complete = enumerator.Enumerate([&](const std::vector<size_t>& chosen) {
    TslQuery candidate;
    candidate.name = StrCat(q.name.empty() ? "contained" : q.name, "_mc",
                            ++counter);
    candidate.head = q.head;
    for (size_t i : chosen) {
      candidate.body.push_back(enumerator.atoms()[i].condition);
    }
    if (!CheckSafety(candidate).ok()) return true;
    Result<TslQuery> chased = ChaseQuery(candidate, chase_options);
    if (!chased.ok()) {
      if (chased.status().IsUnsatisfiable()) return true;
      failure = chased.status();
      return false;
    }
    ++result.candidates_tested;
    Result<TslRuleSet> composed = ComposeWithViews(*chased, chased_views);
    if (!composed.ok()) {
      failure = composed.status();
      return false;
    }
    if (composed->rules.empty()) return true;  // produces nothing
    Result<bool> contained = tester.ContainedInReference(*composed);
    if (!contained.ok()) {
      failure = contained.status();
      return false;
    }
    if (*contained) {
      accepted.push_back(Accepted{std::move(candidate),
                                  std::move(composed).value()});
    }
    return true;
  });
  TSLRW_RETURN_NOT_OK(failure);
  result.truncated = !complete;
  if (result.truncated && options.strict_limits) {
    return Status::ResourceExhausted(
        StrCat("contained-rewriting search stopped after ",
               result.candidates_tested,
               " tested candidate(s); the union may not be maximal"));
  }

  // Prune rules whose expansion is contained in another accepted rule's
  // expansion (keep the first of mutually-equivalent pairs).
  std::vector<bool> dead(accepted.size(), false);
  for (size_t i = 0; i < accepted.size(); ++i) {
    for (size_t j = 0; j < accepted.size() && !dead[i]; ++j) {
      if (i == j || dead[j]) continue;
      TSLRW_ASSIGN_OR_RETURN(
          bool sub, IsContainedIn(accepted[i].composed, accepted[j].composed,
                                  chase_options));
      if (!sub) continue;
      TSLRW_ASSIGN_OR_RETURN(
          bool super, IsContainedIn(accepted[j].composed,
                                    accepted[i].composed, chase_options));
      if (!super || j < i) dead[i] = true;
    }
  }

  TslRuleSet union_composed;
  for (size_t i = 0; i < accepted.size(); ++i) {
    if (dead[i]) continue;
    result.rewriting.rules.push_back(std::move(accepted[i].rule));
    for (TslQuery& rule : accepted[i].composed.rules) {
      union_composed.rules.push_back(std::move(rule));
    }
  }
  if (!union_composed.rules.empty()) {
    TSLRW_ASSIGN_OR_RETURN(
        result.equivalent,
        IsContainedIn(TslRuleSet::Single(q), union_composed, chase_options));
  }
  return result;
}

}  // namespace tslrw
