#ifndef TSLRW_REWRITE_VIEW_INDEX_H_
#define TSLRW_REWRITE_VIEW_INDEX_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "constraints/inference.h"
#include "rewrite/chase.h"
#include "tsl/ast.h"

namespace tslrw {

/// Counters one index probe reports back to the rewriter's metrics.
struct ViewProbeOutcome {
  /// Views handed to candidate enumeration (admissible for this query).
  size_t admitted = 0;
  /// Views the index proved can contribute no containment mapping.
  size_t skipped = 0;
};

/// \brief A precompiled structural index over a fixed view set, consulted
/// by RewriteQuery in place of its per-query chase-every-view scan.
///
/// The contract is exactness: the returned view list must yield a
/// byte-identical RewriteResult to chasing and scanning every view. The
/// only implementation is catalog::CompiledCatalog (src/catalog); this
/// interface exists so the rewriter, the mediator, and the serving layer
/// can hold an index without depending on the catalog-compiler layer
/// above them.
class ViewSetIndex {
 public:
  virtual ~ViewSetIndex() = default;

  /// Cheap per-query gate: true iff \p views is the view set this index
  /// was compiled for (size and per-ordinal names; definition equality for
  /// those names is the attach point's ValidateAgainst contract) and the
  /// compile produced a servable index (no error-level view diagnostics).
  /// Replans over live-view subsets return false here and take the full
  /// scan, which keeps failover behavior byte-identical with or without
  /// an index.
  virtual bool CoversViews(const std::vector<TslQuery>& views) const = 0;

  /// The chased views RewriteQuery should enumerate candidates over for
  /// \p chased_query, in the same relative order as \p views. Requires a
  /// preceding CoversViews(views) == true; returns nullopt otherwise.
  /// \p chase_options must be the options the caller would chase views
  /// with; entries the compiler could not chase offline (TSL204) are
  /// chased here, so a chase error propagates exactly as it would from
  /// the full scan.
  virtual Result<std::optional<std::vector<TslQuery>>> ChasedViewsFor(
      const TslQuery& chased_query, const std::vector<TslQuery>& views,
      const ChaseOptions& chase_options, ViewProbeOutcome* outcome) const = 0;

  /// Verifies this index was compiled for exactly \p views (same names,
  /// same definitions, same order) under \p constraints. Attach points
  /// (Mediator, QueryServer) call this once so every later probe can
  /// trust its stored chase outcomes.
  virtual Status ValidateAgainst(
      const std::vector<TslQuery>& views,
      const StructuralConstraints* constraints) const = 0;

  /// Stable fingerprint of the compiled (views, constraints) pair; the
  /// serving layer keys its stale-index guard on this.
  virtual uint64_t catalog_fingerprint() const = 0;
};

}  // namespace tslrw

#endif  // TSLRW_REWRITE_VIEW_INDEX_H_
