#include "rewrite/chase.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/string_util.h"
#include "rewrite/mapping.h"
#include "rewrite/substitution.h"
#include "tsl/normal_form.h"

namespace tslrw {

namespace {

/// One occurrence of an oid term in the body: path index + step depth.
struct Occurrence {
  size_t path;
  size_t depth;
};

/// What one occurrence says about the value of its object.
struct ValueFact {
  enum Kind {
    kSetWithMember,  ///< the path continues below this step
    kEmptySet,       ///< tail is `{}`
    kTerm,           ///< tail is a term (variable / atom / function term)
  };
  Kind kind;
  Term term;  // meaningful for kTerm
};

ValueFact ValueAt(const Path& path, size_t depth) {
  if (depth + 1 < path.steps.size()) {
    return {ValueFact::kSetWithMember, Term()};
  }
  if (path.tail.is_set()) return {ValueFact::kEmptySet, Term()};
  return {ValueFact::kTerm, path.tail.term()};
}

/// Generates a variable name not used in the query.
class FreshNames {
 public:
  explicit FreshNames(const TslQuery& q) : q_(&q) {}

  std::string Next(const char* stem) {
    if (q_ != nullptr) {
      // Deferred: most chase rounds never mint a name, and the variable
      // scan is the most expensive part of a round's setup. `q` is stable
      // for the lifetime of this object (one chase round).
      for (const Term& v : q_->HeadVariables()) used_.insert(v.var_name());
      for (const Term& v : q_->BodyVariables()) used_.insert(v.var_name());
      q_ = nullptr;
    }
    while (true) {
      std::string candidate = StrCat(stem, counter_++);
      if (used_.insert(candidate).second) return candidate;
    }
  }

 private:
  const TslQuery* q_;
  std::set<std::string> used_;
  int counter_ = 1;
};

/// Result of one scan: either a substitution to apply (restart), an
/// unsatisfiability error, or no change.
struct StepOutcome {
  bool changed = false;
  Substitution subst;
  Status error;
};

bool HeadUsesVariable(const TslQuery& q, const Term& var) {
  std::set<Term> head_vars = q.HeadVariables();
  return head_vars.count(var) > 0;
}

/// Applies the \S3.2 oid-key rules to one pair of occurrences of the same
/// oid term. On progress fills `out` and returns true.
bool ChaseOidPair(const TslQuery& q, const std::vector<Path>& paths,
                  const Occurrence& a, const Occurrence& b,
                  FreshNames* fresh, StepOutcome* out) {
  const Path::Step& sa = paths[a.path].steps[a.depth];
  const Path::Step& sb = paths[b.path].steps[b.depth];

  // Labels: oid -> label. A descendant step carries no label information
  // (its label field is a sentinel), so label merging is skipped there;
  // closure steps do pin the endpoint's label (every chain member carries
  // it), so they participate normally.
  if (sa.kind != StepKind::kDescendant && sb.kind != StepKind::kDescendant &&
      !(sa.label == sb.label)) {
    if (sa.label.is_var() || sb.label.is_var()) {
      const Term& var = sa.label.is_var() ? sa.label : sb.label;
      const Term& other = sa.label.is_var() ? sb.label : sa.label;
      out->changed = true;
      out->subst.BindTerm(var, other);
      return true;
    }
    out->error = Status::Unsatisfiable(
        StrCat("object ", sa.oid.ToString(), " would need labels ",
               sa.label.ToString(), " and ", sb.label.ToString()));
    return true;
  }

  // Values: oid -> value.
  ValueFact va = ValueAt(paths[a.path], a.depth);
  ValueFact vb = ValueAt(paths[b.path], b.depth);
  if (vb.kind != ValueFact::kTerm && va.kind == ValueFact::kTerm) {
    std::swap(va, vb);  // keep the term side in vb
  }
  if (va.kind != ValueFact::kTerm) {
    if (vb.kind != ValueFact::kTerm) return false;  // set vs set: nothing
    const Term& t = vb.term;
    if (!t.is_var()) {
      out->error = Status::Unsatisfiable(
          StrCat("object ", sa.oid.ToString(),
                 " is set-valued in one condition but has atomic value ",
                 t.ToString(), " in another"));
      return true;
    }
    if (va.kind == ValueFact::kSetWithMember) {
      // \S3.2 rule for set variables: V becomes a fresh {<X Y Z>}
      // everywhere, head included (Example 3.4).
      Term x = Term::MakeVar(fresh->Next("Xf"), VarKind::kObjectId);
      Term y = Term::MakeVar(fresh->Next("Yf"), VarKind::kLabelValue);
      Term z = Term::MakeVar(fresh->Next("Zf"), VarKind::kLabelValue);
      ObjectPattern member{x, y, PatternValue::FromTerm(z)};
      out->changed = true;
      out->subst.BindSet(t, SetPattern{std::move(member)});
      return true;
    }
    // Empty-set occurrence: only the set-ness of V is implied. Rewriting V
    // to `{}` is sound for body occurrences but would change the copy
    // semantics of a head occurrence, so we only chase body-only variables.
    if (!HeadUsesVariable(q, t)) {
      out->changed = true;
      out->subst.BindSet(t, SetPattern{});
      return true;
    }
    return false;
  }

  // Both occurrences carry terms.
  const Term& ta = va.term;
  const Term& tb = vb.term;
  if (ta == tb) return false;
  if (ta.is_var() || tb.is_var()) {
    const Term& var = ta.is_var() ? ta : tb;
    const Term& other = ta.is_var() ? tb : ta;
    if (var.is_var() && other.is_var()) {
      out->changed = true;
      out->subst.BindTerm(other, var);  // replace the second with the first
      return true;
    }
    out->changed = true;
    out->subst.BindTerm(var, other);
    return true;
  }
  out->error = Status::Unsatisfiable(
      StrCat("object ", sa.oid.ToString(), " would need values ",
             ta.ToString(), " and ", tb.ToString()));
  return true;
}

/// Structural-conflict detection (an extension in the \S3.3 spirit: the
/// paper names label inference and labeled FDs as "two cases where
/// information can easily be inferred" — these are two more): a pattern
/// that descends below a CDATA-declared label, demands a set value from
/// one, or asks for a child label the parent's content model excludes can
/// never match data conforming to the DTD.
bool DetectStructuralConflicts(const std::vector<Path>& paths,
                               const StructuralConstraints& constraints,
                               const std::set<std::string>& exempt,
                               std::set<std::string>* fired,
                               StepOutcome* out) {
  for (const Path& path : paths) {
    if (exempt.count(path.source) > 0) continue;
    for (size_t i = 0; i < path.steps.size(); ++i) {
      const Path::Step& step = path.steps[i];
      if (!step.label.is_atom() || step.kind != StepKind::kChild) continue;
      const std::string& label = step.label.atom_name();
      bool continues = i + 1 < path.steps.size();
      bool wants_set = continues || (i + 1 == path.steps.size() &&
                                     path.tail.is_set());
      if (wants_set && constraints.IsAtomic(label)) {
        if (fired != nullptr) fired->insert(StrCat("conflict:", label));
        out->error = Status::Unsatisfiable(
            StrCat("pattern needs subobjects under ", label,
                   ", which the constraints declare atomic (CDATA)"));
        return true;
      }
      if (continues && path.steps[i + 1].kind == StepKind::kChild &&
          path.steps[i + 1].label.is_atom() &&
          !constraints.AllowsChild(label,
                                   path.steps[i + 1].label.atom_name())) {
        if (fired != nullptr) {
          fired->insert(StrCat("conflict:", label, ".",
                               path.steps[i + 1].label.atom_name()));
        }
        out->error = Status::Unsatisfiable(
            StrCat("the constraints do not allow a ",
                   path.steps[i + 1].label.atom_name(), " subobject under ",
                   label));
        return true;
      }
    }
  }
  return false;
}

/// \S3.3 label inference over one path: `a.?.c` with a unique middle.
bool InferLabels(const std::vector<Path>& paths,
                 const StructuralConstraints& constraints,
                 const std::set<std::string>& exempt,
                 std::set<std::string>* fired, StepOutcome* out) {
  for (const Path& path : paths) {
    if (exempt.count(path.source) > 0) continue;
    for (size_t i = 0; i + 1 < path.steps.size(); ++i) {
      if (!path.steps[i + 1].label.is_var()) continue;
      if (!path.steps[i].label.is_atom()) continue;
      // The grandchild evidence: the step below the unknown label.
      if (i + 2 >= path.steps.size()) continue;
      if (!path.steps[i + 2].label.is_atom()) continue;
      // Label inference is a statement about direct parent/child pairs.
      if (path.steps[i].kind != StepKind::kChild ||
          path.steps[i + 1].kind != StepKind::kChild ||
          path.steps[i + 2].kind != StepKind::kChild) {
        continue;
      }
      std::optional<std::string> middle = constraints.InferMiddleLabel(
          path.steps[i].label.atom_name(),
          path.steps[i + 2].label.atom_name());
      if (!middle.has_value()) continue;
      if (fired != nullptr) {
        fired->insert(StrCat("infer:", path.steps[i].label.atom_name(), ".",
                             path.steps[i + 2].label.atom_name()));
      }
      out->changed = true;
      out->subst.BindTerm(path.steps[i + 1].label,
                          Term::MakeAtom(*middle));
      return true;
    }
  }
  return false;
}

/// \S3.3 labeled-FD chase: same parent oid, same unique child label —
/// unify the child oid terms.
bool ChaseLabeledFds(const std::vector<Path>& paths,
                     const std::map<Term, std::vector<Occurrence>>& occs,
                     const StructuralConstraints& constraints,
                     const std::set<std::string>& exempt,
                     std::set<std::string>* fired, StepOutcome* out) {
  for (const auto& [oid, list] : occs) {
    for (size_t i = 0; i < list.size(); ++i) {
      for (size_t j = i + 1; j < list.size(); ++j) {
        const Path& pa = paths[list[i].path];
        const Path& pb = paths[list[j].path];
        if (exempt.count(pa.source) > 0 || exempt.count(pb.source) > 0) {
          continue;
        }
        size_t da = list[i].depth;
        size_t db = list[j].depth;
        if (da + 1 >= pa.steps.size() || db + 1 >= pb.steps.size()) continue;
        const Path::Step& parent = pa.steps[da];
        const Path::Step& ca = pa.steps[da + 1];
        const Path::Step& cb = pb.steps[db + 1];
        // Labeled FDs speak about *direct* subobjects only.
        if (ca.kind != StepKind::kChild || cb.kind != StepKind::kChild) {
          continue;
        }
        if (ca.oid == cb.oid) continue;
        if (!parent.label.is_atom() || !ca.label.is_atom() ||
            !(ca.label == cb.label)) {
          continue;
        }
        if (!constraints.HasUniqueChild(parent.label.atom_name(),
                                        ca.label.atom_name())) {
          continue;
        }
        if (fired != nullptr) {
          fired->insert(StrCat("fd:", parent.label.atom_name(), ".",
                               ca.label.atom_name()));
        }
        TermSubstitution unifier;
        if (!Unify(ca.oid, cb.oid, &unifier)) {
          out->error = Status::Unsatisfiable(
              StrCat("functional dependency ", parent.label.atom_name(),
                     " -> ", ca.label.atom_name(), " forces ",
                     ca.oid.ToString(), " = ", cb.oid.ToString(),
                     " but they do not unify"));
          return true;
        }
        out->changed = true;
        for (const auto& [var, value] : unifier.bindings()) {
          out->subst.BindTerm(var, value);
        }
        return true;
      }
    }
  }
  return false;
}

}  // namespace

Result<TslQuery> ChaseQuery(const TslQuery& query,
                            const ChaseOptions& options) {
  TslQuery q = ToNormalForm(query);
  // The chase terminates on acyclic bodies; the cap is a defensive bound
  // against library bugs, far above what any legal input can need.
  constexpr int kMaxRounds = 100000;
  for (int round = 0; round < kMaxRounds; ++round) {
    TSLRW_ASSIGN_OR_RETURN(std::vector<Path> paths, BodyPaths(q));

    std::map<Term, std::vector<Occurrence>> occurrences;
    for (size_t p = 0; p < paths.size(); ++p) {
      for (size_t d = 0; d < paths[p].steps.size(); ++d) {
        occurrences[paths[p].steps[d].oid].push_back(Occurrence{p, d});
      }
    }

    StepOutcome out;
    FreshNames fresh(q);
    bool acted = false;

    // 1. The oid key dependency (always on).
    for (const auto& [oid, list] : occurrences) {
      if (acted) break;
      for (size_t i = 0; i < list.size() && !acted; ++i) {
        for (size_t j = i + 1; j < list.size() && !acted; ++j) {
          acted = ChaseOidPair(q, paths, list[i], list[j], &fresh, &out);
        }
      }
    }
    // 2. Structural constraints (conflicts, label inference, labeled FDs),
    // skipping conditions over exempt sources (typically views).
    if (!acted && options.constraints != nullptr) {
      acted = DetectStructuralConflicts(
          paths, *options.constraints, options.constraint_exempt_sources,
          options.fired_constraints, &out);
    }
    if (!acted && options.constraints != nullptr) {
      acted = InferLabels(paths, *options.constraints,
                          options.constraint_exempt_sources,
                          options.fired_constraints, &out);
    }
    if (!acted && options.constraints != nullptr) {
      acted = ChaseLabeledFds(paths, occurrences, *options.constraints,
                              options.constraint_exempt_sources,
                              options.fired_constraints, &out);
    }

    if (!acted) {
      // `q` is the output of a ToNormalForm (at entry and after every
      // round), so the \S3.2 rule-6 re-split + dedup already holds.
      return q;
    }
    if (!out.error.ok()) return out.error;
    q = ToNormalForm(out.subst.Apply(q));
  }
  return Status::Internal("chase failed to terminate (library bug)");
}

}  // namespace tslrw
