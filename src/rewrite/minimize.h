#ifndef TSLRW_REWRITE_MINIMIZE_H_
#define TSLRW_REWRITE_MINIMIZE_H_

#include "common/result.h"
#include "rewrite/chase.h"
#include "tsl/ast.h"

namespace tslrw {

/// \brief Minimizes a TSL query: removes body conditions whose deletion
/// preserves equivalence (the Chandra–Merlin minimization, run through the
/// \S4 TSL equivalence test so nesting, oids, and set values are handled).
///
/// The result is a normal-form query with the same head, equivalent to the
/// input for all databases, from which no further condition can be dropped.
/// Chasing first (with \p options) both normalizes and can expose
/// redundancy that is invisible syntactically. An Unsatisfiable input is
/// reported as such.
///
/// Useful before rewriting (smaller k shrinks the Step 1B candidate space,
/// \S5.1) and after composition (resolvent bodies routinely contain
/// subsumed conditions).
Result<TslQuery> MinimizeQuery(const TslQuery& query,
                               const ChaseOptions& options = {});

}  // namespace tslrw

#endif  // TSLRW_REWRITE_MINIMIZE_H_
