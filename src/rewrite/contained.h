#ifndef TSLRW_REWRITE_CONTAINED_H_
#define TSLRW_REWRITE_CONTAINED_H_

#include <vector>

#include "common/result.h"
#include "rewrite/rewriter.h"
#include "tsl/ast.h"

namespace tslrw {

/// \brief Output of the maximally-contained rewriting search.
struct ContainedRewritingResult {
  /// Contained rewritings over the views: each rule's composition with the
  /// views is contained in the query. Their union is the best
  /// view-only answer obtainable from candidate bodies of at most k
  /// conditions; rules subsumed by other rules have been pruned.
  TslRuleSet rewriting;
  /// True when the union is in fact *equivalent* to the query (the
  /// maximally contained rewriting is complete).
  bool equivalent = false;
  /// The candidate search was cut off (max_candidates or the budget hook);
  /// the union is still sound but may not be maximal.
  bool truncated = false;
  /// Diagnostics, as in RewriteResult.
  size_t candidates_tested = 0;
};

/// \brief The \S7 future-work extension "in the spirit of [10, 9]":
/// instead of demanding equivalence, collect every candidate whose
/// composition is *contained* in the query and union them — the answer a
/// mediator can give when sources (described by views) only partially
/// cover the data, guaranteed sound, and maximal over the same candidate
/// space the \S3.4 algorithm searches (view-head instantiations, bodies of
/// at most k conditions).
///
/// Candidates are verified through composition + the \S4 one-sided
/// containment test; accepted rules contained in other accepted rules are
/// dropped. When `options.require_total` is false, residual query
/// conditions may appear in rules, which makes equivalence achievable
/// whenever the \S3.4 algorithm would find a rewriting.
Result<ContainedRewritingResult> FindMaximallyContainedRewriting(
    const TslQuery& query, const std::vector<TslQuery>& views,
    const RewriteOptions& options = {});

}  // namespace tslrw

#endif  // TSLRW_REWRITE_CONTAINED_H_
