#ifndef TSLRW_REWRITE_SUBSTITUTION_H_
#define TSLRW_REWRITE_SUBSTITUTION_H_

#include <map>
#include <string>

#include "oem/term.h"
#include "tsl/ast.h"

namespace tslrw {

/// \brief A mapping in the sense of \S3.1: variables map to terms, and —
/// the "Set Mappings" extension — value variables may map to set patterns
/// (Example 3.2: `Z' -> {<Z last stanford>}`).
///
/// Set bindings take effect only where the variable stands alone in a value
/// field; inside terms only the term bindings apply (a variable bound to a
/// set pattern cannot occur inside an oid term — sorts forbid it).
class Substitution {
 public:
  Substitution() = default;

  /// Binds \p var to \p value; false if already bound differently (to a
  /// term or to a set pattern).
  bool BindTerm(const Term& var, const Term& value);

  /// Binds value variable \p var to \p members (possibly empty: `{}`).
  /// Rejects a binding whose pattern contains \p var itself (occurs check).
  bool BindSet(const Term& var, SetPattern members);

  /// Removes the term binding for \p var (no-op if unbound). Set bindings
  /// are untouched. Backtracking matchers undo a failed branch by
  /// unbinding the variables recorded on their trail instead of restoring
  /// a full copy of the substitution.
  void UnbindTerm(const Term& var) { terms_.Unbind(var); }

  /// Two-way unification of \p a and \p b within this substitution's term
  /// bindings (used by query–view composition, \S3.1 Step 2A). Variables
  /// carrying set bindings refuse term unification. Returns false and
  /// leaves the substitution unchanged on failure.
  bool UnifyTerms(const Term& a, const Term& b);

  bool IsBound(const Term& var) const;
  const Term* LookupTerm(const Term& var) const;
  const SetPattern* LookupSet(const Term& var) const;

  const TermSubstitution& terms() const { return terms_; }
  const std::map<Term, SetPattern>& sets() const { return set_bindings_; }
  size_t size() const { return terms_.size() + set_bindings_.size(); }
  bool empty() const { return size() == 0; }

  Term Apply(const Term& t) const { return terms_.Apply(t); }
  /// Applies the substitution to a pattern; a value-field variable with a
  /// set binding becomes that set pattern, with the substitution applied
  /// recursively inside it.
  ObjectPattern Apply(const ObjectPattern& pattern) const;
  Condition Apply(const Condition& condition) const;
  TslQuery Apply(const TslQuery& query) const;

  /// Paper-style rendering: `[P' -> P, Z' -> {<Z last stanford>}]`.
  std::string ToString() const;

  friend bool operator==(const Substitution& a, const Substitution& b) {
    return a.terms_.bindings() == b.terms_.bindings() &&
           a.set_bindings_ == b.set_bindings_;
  }
  friend bool operator<(const Substitution& a, const Substitution& b) {
    if (a.terms_.bindings() != b.terms_.bindings()) {
      return a.terms_.bindings() < b.terms_.bindings();
    }
    return a.set_bindings_ < b.set_bindings_;
  }

 private:
  TermSubstitution terms_;
  std::map<Term, SetPattern> set_bindings_;
};

}  // namespace tslrw

#endif  // TSLRW_REWRITE_SUBSTITUTION_H_
