#ifndef TSLRW_REWRITE_CHASE_H_
#define TSLRW_REWRITE_CHASE_H_

#include <set>
#include <string>

#include "common/result.h"
#include "constraints/inference.h"
#include "tsl/ast.h"

namespace tslrw {

/// \brief Chase options: supplying structural constraints enables the \S3.3
/// label inference and labeled-FD rules (plus structural-conflict
/// detection) in addition to the always-on \S3.2 oid-key-dependency rules.
struct ChaseOptions {
  const StructuralConstraints* constraints = nullptr;
  /// Sources whose conditions the constraint-derived rules must ignore:
  /// a DTD describes the *source* data, and a view's answer objects may
  /// reuse source label spellings with entirely different structure (V1's
  /// head label is `p`). The rewriting pipeline lists the view names here
  /// when chasing candidates. The \S3.2 oid-key rules are source-agnostic
  /// and always apply.
  std::set<std::string> constraint_exempt_sources;
  /// Optional sink: every constraint-derived rule that acts (or detects a
  /// conflict) reports a stable key describing which piece of the DTD it
  /// used — `conflict:<label>`, `infer:<parent>.<grandchild>`, or
  /// `fd:<parent>.<child>`. The maintenance layer records these in a plan's
  /// dependency footprint so a catalog delta can tell which cached plans a
  /// constraint edit might affect. Keys accumulate across rounds.
  std::set<std::string>* fired_constraints = nullptr;
};

/// \brief Chases a TSL query to a fixpoint under
///
///  1. the key dependency oid -> (label, value) implicit in OEM object
///     identity, using the \S3.2 extension for set variables: when one
///     occurrence of an oid has a set pattern and another binds a value
///     variable V, every occurrence of V (head included) is replaced by a
///     fresh `{<X Y Z>}` — exactly the (Q11) -> (Q10) transformation of
///     Example 3.4;
///  2. with constraints: label inference (`a.?.c  ==>  ? = b` when b is the
///     only child of a that can carry a c child) and labeled functional
///     dependencies (an `a` object has exactly one `b` child, so sibling
///     `b` oid terms unify) — the Example 3.5 derivations (Q9) -> (Q12) ->
///     (Q13).
///
/// The input is converted to normal form first; the output is in normal
/// form with duplicate conditions dropped (\S3.2 rule 6). Fails with
/// Unsatisfiable when the dependencies force two distinct constants
/// together ("halt with an error"); such a query has no model respecting
/// object identity. Termination is guaranteed by body acyclicity (\S3.2).
Result<TslQuery> ChaseQuery(const TslQuery& query,
                            const ChaseOptions& options = {});

}  // namespace tslrw

#endif  // TSLRW_REWRITE_CHASE_H_
