#ifndef TSLRW_REWRITE_CANDIDATE_H_
#define TSLRW_REWRITE_CANDIDATE_H_

#include <cstdint>
#include <set>
#include <vector>

#include "common/result.h"
#include "rewrite/rewriter.h"
#include "tsl/ast.h"

namespace tslrw {

/// \brief One building block for Step 1B candidate bodies: an instantiated
/// view head θ(head(V)) or an original query condition, plus the set of
/// query-body conditions it "covers" (the \S3.4 heuristic's bookkeeping).
struct CandidateAtom {
  Condition condition;
  std::set<size_t> covers;
  bool is_view = false;
};

/// \brief Step 1A + atom assembly: discovers all containment mappings from
/// each (chased) view body into the (chased) query body and materializes
/// one view atom per mapping, followed by one atom per query condition.
/// \p mappings_found, if non-null, receives the total mapping count.
///
/// With \p allow_partial_mappings, view body paths may stay unmapped
/// (BodyMapping::kUnmapped): the instantiated head then keeps unbound view
/// variables, which is the extra freedom the maximally-contained rewriting
/// search needs (an over-restrictive view is still a sound source of
/// contained answers). View variables are renamed apart per view in that
/// mode, so leftovers never capture query variables.
Result<std::vector<CandidateAtom>> BuildCandidateAtoms(
    const TslQuery& chased_query, const std::vector<TslQuery>& chased_views,
    size_t* mappings_found, bool allow_partial_mappings = false);

/// \brief Step 1B enumeration: subsets of atoms of size 1..k (Lemma 5.2),
/// shortest first, subject to (i) at least one view atom, (ii)
/// `options.require_total` excludes query-condition atoms, (iii) the cover
/// heuristic, when enabled, demands the union of covers equal the whole
/// query body.
class CandidateEnumerator {
 public:
  CandidateEnumerator(std::vector<CandidateAtom> atoms,
                      size_t num_query_conditions,
                      const RewriteOptions& options)
      : atoms_(std::move(atoms)),
        num_query_conditions_(num_query_conditions),
        options_(options) {
    // Admissible runs at every leaf of the subset lattice — orders of
    // magnitude more often than a candidate is emitted — so the cover
    // bookkeeping is precompiled to one bitmask per atom when the query
    // body fits in one word (it essentially always does; Lemma 5.2 bounds
    // useful candidates by the body size).
    if (num_query_conditions_ <= 64) {
      cover_masks_.reserve(atoms_.size());
      for (const CandidateAtom& atom : atoms_) {
        uint64_t mask = 0;
        for (size_t c : atom.covers) mask |= uint64_t{1} << c;
        cover_masks_.push_back(mask);
      }
      full_cover_mask_ = num_query_conditions_ == 64
                             ? ~uint64_t{0}
                             : (uint64_t{1} << num_query_conditions_) - 1;
    }
  }

  const std::vector<CandidateAtom>& atoms() const { return atoms_; }

  /// Invokes \p fn on each admissible atom-index subset until \p fn
  /// returns false or `options.max_candidates` subsets have been emitted.
  /// Returns whether enumeration ran to completion.
  template <typename Fn>
  bool Enumerate(Fn fn) const {
    std::vector<size_t> chosen;
    size_t emitted = 0;
    bool complete = true;
    for (size_t len = 1; len <= num_query_conditions_ && complete; ++len) {
      complete = EnumerateLen(len, 0, &chosen, &emitted, fn);
    }
    return complete;
  }

 private:
  template <typename Fn>
  bool EnumerateLen(size_t len, size_t start, std::vector<size_t>* chosen,
                    size_t* emitted, Fn fn) const {
    if (chosen->size() == len) {
      if (!Admissible(*chosen)) return true;
      if (*emitted >= options_.max_candidates) return false;
      if (options_.should_stop && options_.should_stop()) return false;
      ++*emitted;
      return fn(*chosen);
    }
    for (size_t i = start; i < atoms_.size(); ++i) {
      chosen->push_back(i);
      bool keep_going = EnumerateLen(len, i + 1, chosen, emitted, fn);
      chosen->pop_back();
      if (!keep_going) return false;
    }
    return true;
  }

  bool Admissible(const std::vector<size_t>& chosen) const;

  std::vector<CandidateAtom> atoms_;
  size_t num_query_conditions_;
  const RewriteOptions& options_;
  /// One cover bitmask per atom; empty when the body exceeds 64 conditions
  /// (Admissible then falls back to set union).
  std::vector<uint64_t> cover_masks_;
  uint64_t full_cover_mask_ = 0;
};

}  // namespace tslrw

#endif  // TSLRW_REWRITE_CANDIDATE_H_
