#ifndef TSLRW_REWRITE_MAPPING_H_
#define TSLRW_REWRITE_MAPPING_H_

#include <vector>

#include "common/result.h"
#include "rewrite/substitution.h"
#include "tsl/ast.h"
#include "tsl/normal_form.h"

namespace tslrw {

/// \brief A containment mapping from one normal-form body into another
/// (\S3.1 Step 1A, generalized from [7] "to cope with object nesting").
struct BodyMapping {
  /// target[i] for an unmapped `from` path (partial mappings only).
  static constexpr size_t kUnmapped = static_cast<size_t>(-1);

  Substitution subst;
  /// target[i] is the index of the `to` path that `from` path i maps into
  /// ("covers", in the sense of the \S3.4 heuristic), or kUnmapped.
  std::vector<size_t> target;

  bool IsTotal() const {
    for (size_t t : target) {
      if (t == kUnmapped) return false;
    }
    return true;
  }
};

/// \brief One-way syntactic matching: extends \p subst so that
/// subst(from) == to. Variables of `from` bind to subterms of `to`
/// (respecting the V_O / V_C sorts); atoms and functors must coincide.
/// Returns false and leaves \p subst unchanged on mismatch.
bool MatchInto(const Term& from, const Term& to, Substitution* subst);

/// \brief Enumerates every mapping from the paths of \p from into the paths
/// of \p to, starting from \p seed.
///
/// A path maps into a path of the same source by aligning steps from the
/// top (both describe matches rooted at source top-level objects). When the
/// `from` path ends in a value variable while the `to` path continues, the
/// variable is bound to the remaining subpattern as a *set mapping*
/// (Example 3.2); when both end at the same depth the tails must match
/// (constants exactly, variables by binding). A `from` path strictly deeper
/// than its target never maps — that only becomes possible after the \S3.2
/// chase has turned forced set variables into set patterns.
///
/// The result is deduplicated and deterministically ordered.
///
/// With \p allow_unmapped, a `from` path may also be left out of the
/// mapping (its target becomes BodyMapping::kUnmapped and its variables may
/// stay unbound). Partial mappings are what the maximally-contained
/// rewriting search needs: a view condition with no counterpart in the
/// query only makes the view more selective, which is sound for
/// containment though not for equivalence. The all-unmapped mapping is
/// suppressed.
std::vector<BodyMapping> FindBodyMappings(const std::vector<Path>& from,
                                          const std::vector<Path>& to,
                                          const Substitution& seed = {},
                                          bool allow_unmapped = false);

/// \brief Existence check with early exit: whether at least one (total)
/// body mapping from \p from into \p to extends \p seed. Equivalent to
/// `!FindBodyMappings(from, to, seed).empty()` but stops at the first
/// witness — the right primitive for the \S4 coverage test, where bodies
/// with many interchangeable paths otherwise force factorial enumeration.
bool ExistsBodyMapping(const std::vector<Path>& from,
                       const std::vector<Path>& to, const Substitution& seed);

/// \brief Step 1A of the rewriting algorithm: all mappings from the body of
/// \p view into the body of \p query. Both must be in normal form (fails
/// with InvalidArgument otherwise); callers normally chase them first.
Result<std::vector<BodyMapping>> FindMappings(const TslQuery& view,
                                              const TslQuery& query);

}  // namespace tslrw

#endif  // TSLRW_REWRITE_MAPPING_H_
